"""The load driver: replay a synthesized workload against a service facade.

:class:`LoadDriver` is deployment-agnostic: anything exposing the
``submit(request) -> Future`` surface (:class:`~repro.cluster.ClusterService`)
is driven asynchronously with open-loop pacing or closed-loop windowing,
and anything exposing only the synchronous ``predict`` surface
(:class:`~repro.serve.PersonalizationService`) is driven call-by-call.  Both
paths record identical :class:`~repro.loadgen.report.RequestOutcome` streams
into an :class:`~repro.loadgen.report.SLOReport`.

Pacing: open-loop workloads sleep until each request's virtual arrival
offset times ``time_scale``.  ``time_scale=1`` replays the scenario's
virtual clock in real time; ``0`` disables pacing entirely (maximum-ingest
mode, what the throughput benchmarks use).

Faults: events fire *between* submissions, keyed by request index, through
a :class:`~repro.loadgen.faults.FaultInjector` — deterministic placement in
the request stream even though their wall-clock moment varies.

Every submitted future is awaited with a hard deadline; one that never
resolves is reported as *hung* (status 408) rather than blocking the run —
``report.hung == 0`` is the no-leaked-futures invariant the chaos tests
assert.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .faults import FaultInjector
from .report import (
    STATUS_FAILED,
    STATUS_HUNG,
    STATUS_OK,
    STATUS_REJECTED,
    RequestOutcome,
    SLOReport,
)
from .scenario import Workload

__all__ = ["DriverConfig", "LoadDriver"]


@dataclass
class DriverConfig:
    """Replay knobs (orthogonal to the scenario being replayed)."""

    time_scale: float = 1.0  #: virtual→wall multiplier; 0 = no pacing
    timeout_s: float = 30.0  #: hard deadline for the slowest future
    record_cluster_stats: bool = True  #: attach ClusterService.stats() to the report

    def __post_init__(self) -> None:
        if self.time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {self.time_scale}")
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")


class LoadDriver:
    """Replays workloads against one service facade and scores the run."""

    def __init__(self, service, config: Optional[DriverConfig] = None) -> None:
        self.service = service
        self.config = config or DriverConfig()

    # -- report scaffolding ------------------------------------------------------
    def _is_async(self) -> bool:
        return hasattr(self.service, "submit")

    def _per_shard_planned(self, workload: Workload) -> Dict[str, int]:
        """Planned request count per shard under the current placement.

        Deterministic: placement depends only on the registry contents and
        the shard set, and the workload's tenant sequence is seeded.
        """
        if not hasattr(self.service, "worker_for"):
            return {"0": len(workload)}
        counts: Dict[str, int] = {
            str(shard_id): 0 for shard_id in self.service.shard_ids()
        }
        for item in workload.scheduled:
            shard = self.service.worker_for(item.request.model_id).shard_id
            counts[str(shard)] += 1
        return counts

    def _new_report(self, workload: Workload) -> SLOReport:
        shards = getattr(self.service, "shards", 1)
        return SLOReport(
            scenario=workload.scenario.to_dict(),
            plan=workload.plan_dict(),
            shards=shards if isinstance(shards, int) else 1,
            per_shard_planned=self._per_shard_planned(workload),
        )

    # -- the replay --------------------------------------------------------------
    def run(self, workload: Workload) -> SLOReport:
        """Replay ``workload`` and return its :class:`SLOReport`."""
        if workload.faults and not self._is_async():
            raise ValueError(
                "fault-injection scenarios need a ClusterService "
                "(the single-process facade has no shards to break)"
            )
        report = self._new_report(workload)
        if self._is_async():
            self._run_async(workload, report)
        else:
            self._run_sync(workload, report)
        return report

    def _fire_faults(
        self, injector: Optional[FaultInjector], faults, index: int, workload: Workload,
        report: SLOReport,
    ) -> None:
        for event in faults.get(index, ()):
            entry = injector.fire(event, workload.model_ids)
            report.fault_log.append(entry)

    def _run_async(self, workload: Workload, report: SLOReport) -> None:
        injector = FaultInjector(self.service) if workload.faults else None
        faults: Dict[int, List] = {}
        for event in workload.faults:
            faults.setdefault(event.at_request, []).append(event)

        window = (
            threading.Semaphore(workload.concurrency) if workload.closed_loop else None
        )
        scale = self.config.time_scale
        inflight: List[Tuple[str, str, float, Dict[str, float], Future]] = []
        start = time.perf_counter()
        stalled_from = None
        fired_through = -1
        for index, item in enumerate(workload.scheduled):
            self._fire_faults(injector, faults, index, workload, report)
            fired_through = index
            if window is not None:
                # Closed loop: wait for a slot, not for a timestamp.
                if not window.acquire(timeout=self.config.timeout_s):
                    # The window never freed: the outstanding futures are
                    # stuck.  Stop submitting, but account for the whole
                    # unsubmitted tail — silence would misreport the stall.
                    stalled_from = index
                    break
            elif scale > 0:
                target = start + item.at * scale
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            submitted = time.perf_counter()
            future = self.service.submit(item.request)
            marks: Dict[str, float] = {}

            def _on_done(f: Future, marks: Dict[str, float] = marks) -> None:
                marks["done"] = time.perf_counter()
                if window is not None:
                    window.release()

            future.add_done_callback(_on_done)
            inflight.append(
                (item.request.request_id, item.request.model_id, submitted, marks, future)
            )
        if stalled_from is not None:
            for item in workload.scheduled[stalled_from:]:
                report.record(
                    RequestOutcome(
                        item.request.request_id,
                        item.request.model_id,
                        STATUS_HUNG,
                        error="ClosedLoopStall",
                    )
                )
        # Sweep the rest of the schedule, in order: events past the last
        # submission index (late faults) and any skipped by a stall break
        # still fire exactly once — the fault_log must reflect the whole
        # declared schedule, executed or the run cannot be reasoned about.
        for index in sorted(faults):
            if index > fired_through:
                self._fire_faults(injector, faults, index, workload, report)

        deadline = time.perf_counter() + self.config.timeout_s
        last_done = start
        for request_id, model_id, submitted, marks, future in inflight:
            remaining = max(0.0, deadline - time.perf_counter())
            try:
                result = future.result(timeout=remaining)
            except FutureTimeoutError:
                report.record(
                    RequestOutcome(request_id, model_id, STATUS_HUNG, error="TimeoutError")
                )
                continue
            except Exception as exc:
                done = marks.get("done", time.perf_counter())
                last_done = max(last_done, done)
                report.record(
                    RequestOutcome(
                        request_id,
                        model_id,
                        STATUS_FAILED,
                        latency_s=done - submitted,
                        error=type(exc).__name__,
                    )
                )
                continue
            done = marks.get("done", time.perf_counter())
            last_done = max(last_done, done)
            latency = done - submitted
            if getattr(result, "ok", False):
                report.record(RequestOutcome(request_id, model_id, STATUS_OK, latency))
                report.record_prediction(request_id, result.logits)
            else:
                report.record(RequestOutcome(request_id, model_id, STATUS_REJECTED, latency))
        report.elapsed_s = max(last_done - start, 1e-12)
        if injector is not None:
            injector.restore_all()
        if self.config.record_cluster_stats and hasattr(self.service, "stats"):
            report.cluster_stats = self.service.stats()

    def _run_sync(self, workload: Workload, report: SLOReport) -> None:
        """Call-by-call replay for facades without an async submit surface."""
        scale = self.config.time_scale
        start = time.perf_counter()
        for item in workload.scheduled:
            if not workload.closed_loop and scale > 0:
                target = start + item.at * scale
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            submitted = time.perf_counter()
            try:
                response = self.service.predict(
                    item.request.model_id,
                    item.request.inputs,
                    request_id=item.request.request_id,
                )
            except Exception as exc:
                report.record(
                    RequestOutcome(
                        item.request.request_id,
                        item.request.model_id,
                        STATUS_FAILED,
                        latency_s=time.perf_counter() - submitted,
                        error=type(exc).__name__,
                    )
                )
                continue
            latency = time.perf_counter() - submitted
            report.record(
                RequestOutcome(
                    item.request.request_id, item.request.model_id, STATUS_OK, latency
                )
            )
            report.record_prediction(item.request.request_id, response.logits)
        report.elapsed_s = max(time.perf_counter() - start, 1e-12)
