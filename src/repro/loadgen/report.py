"""SLO reporting: per-request outcomes folded into the serving scorecard.

The :class:`~repro.loadgen.driver.LoadDriver` records one
:class:`RequestOutcome` per scheduled request and the :class:`SLOReport`
summarises them the way a serving dashboard would: latency percentiles
(p50/p95/p99 over completed requests), goodput, rejection rate, per-shard
balance, and — when the target was a
:class:`~repro.cluster.ClusterService` — the cluster's own merged-reservoir
latency block alongside.

The report has two faces:

* the **deterministic** face (``to_dict(timing=False)``): scenario, plan
  digest, planned per-tenant / per-shard distribution and — for fault-free
  scenarios — outcome counts and a predictions digest.  Byte-stable across
  runs of the same (scenario, fleet, seed); this is what the CLI's
  ``--json`` emits by default so artifacts can be diffed.
* the **measured** face (``timing=True`` adds the ``slo`` block): wall-clock
  latency percentiles, goodput, the observed per-shard completions and the
  cluster telemetry.  Honest numbers, inherently run-specific.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cluster.telemetry import LatencyHistogram

__all__ = ["RequestOutcome", "SLOReport", "STATUS_OK", "STATUS_REJECTED", "STATUS_FAILED", "STATUS_HUNG"]

STATUS_OK = 200
STATUS_REJECTED = 503
STATUS_FAILED = 500
STATUS_HUNG = 408  #: future never resolved within the driver's timeout


@dataclass
class RequestOutcome:
    """What happened to one scheduled request."""

    request_id: str
    model_id: str
    status: int  #: STATUS_OK / STATUS_REJECTED / STATUS_FAILED / STATUS_HUNG
    latency_s: float = 0.0  #: submit → resolution (0 for hung futures)
    error: Optional[str] = None  #: exception class name for failures
    hops: Optional[Dict[str, float]] = None  #: per-hop milliseconds (traced runs)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class SLOReport:
    """Aggregated outcomes of one scenario run against one deployment."""

    def __init__(
        self,
        scenario: Dict[str, object],
        plan: Dict[str, object],
        shards: int = 1,
        per_shard_planned: Optional[Dict[str, int]] = None,
    ) -> None:
        self.scenario = scenario
        self.plan = plan
        self.shards = shards
        self.per_shard_planned = per_shard_planned or {}
        self.outcomes: List[RequestOutcome] = []
        self.elapsed_s = 0.0
        self.cluster_stats: Optional[Dict[str, object]] = None
        self.fault_log: List[Dict[str, object]] = []
        #: Time-series + alert summary from an attached TelemetryPoller run
        #: (``loadgen --monitor``); ``None`` keeps the pre-metrics shape.
        self.metrics_summary: Optional[Dict[str, object]] = None
        #: Control-loop summary from an attached Autoscaler run
        #: (``loadgen --autoscale``): decisions, fleet history, shard-seconds.
        self.autoscale_summary: Optional[Dict[str, object]] = None
        self._predictions = hashlib.sha256()
        self._prediction_count = 0

    # -- recording -------------------------------------------------------------
    def record(self, outcome: RequestOutcome) -> None:
        self.outcomes.append(outcome)

    def record_prediction(self, request_id: str, logits) -> None:
        """Fold one completed response into the predictions digest.

        Responses are recorded in request order and logits are quantized to
        1e-6 before hashing: how requests fuse into batches depends on
        wall-clock timing, and fused GEMMs differ from solo ones by a few
        ulps, so raw float bytes would never be run-stable.  The quantized
        digest is — while still pinning any real numerical change (anything
        past 1e-6 flips it).  The zero-add normalizes ``-0.0`` so the sign
        of a rounded-away value cannot flip bytes either.
        """
        self._predictions.update(request_id.encode())
        self._predictions.update((np.round(logits, 6) + 0.0).tobytes())
        self._prediction_count += 1

    # -- derived counters -------------------------------------------------------
    @property
    def requests(self) -> int:
        return len(self.outcomes)

    def _count(self, status: int) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def completed(self) -> int:
        return self._count(STATUS_OK)

    @property
    def rejected(self) -> int:
        return self._count(STATUS_REJECTED)

    @property
    def failed(self) -> int:
        return self._count(STATUS_FAILED)

    @property
    def hung(self) -> int:
        """Futures that never resolved — the invariant every run asserts is 0."""
        return self._count(STATUS_HUNG)

    @property
    def deterministic_outcomes(self) -> bool:
        """Whether outcome counts are part of the deterministic contract.

        Fault-free open/closed-loop scenarios complete every request on
        every run, so their counts (and the predictions digest) are
        byte-stable.  Chaos scenarios race faults against wall-clock
        progress; their counts are honest measurements, not invariants.
        """
        return not self.scenario.get("faults")

    def predictions_digest(self) -> str:
        return self._predictions.hexdigest()

    # -- summaries --------------------------------------------------------------
    def latency_summary(self) -> Dict[str, float]:
        """p50/p95/p99 (+ mean/max) over completed requests, in milliseconds."""
        latencies = [o.latency_s for o in self.outcomes if o.ok]
        histogram = LatencyHistogram(max_samples=max(1, len(latencies)))
        for value in latencies:
            histogram.record(value)
        return histogram.summary()

    def imbalance(self, per_shard: Dict[str, int]) -> float:
        """Max/mean ratio of a per-shard count table (1.0 = perfectly even)."""
        counts = list(per_shard.values())
        if not counts or sum(counts) == 0:
            return 0.0
        return max(counts) / (sum(counts) / len(counts))

    def observed_per_shard(self) -> Dict[str, int]:
        """Completed requests per shard, from the cluster stats (if attached)."""
        if not self.cluster_stats:
            return {}
        return {
            str(shard["shard"]): int(shard["telemetry"]["completed"])
            for shard in self.cluster_stats.get("per_shard", [])
        }

    def goodput_rps(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def offered_rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def requests_traced(self) -> int:
        """Outcomes that carry a per-hop latency decomposition."""
        return sum(1 for o in self.outcomes if o.hops)

    def trace_summary(self) -> Optional[Dict[str, object]]:
        """Per-hop latency percentiles over every traced outcome.

        ``None`` when no outcome carried hops (tracing was off), so untraced
        reports keep their exact pre-trace shape.
        """
        histograms: Dict[str, LatencyHistogram] = {}
        for outcome in self.outcomes:
            if not outcome.hops:
                continue
            for hop, ms in outcome.hops.items():
                histogram = histograms.get(hop)
                if histogram is None:
                    histogram = histograms[hop] = LatencyHistogram()
                histogram.record(ms / 1e3)
        if not histograms:
            return None
        return {
            "requests_traced": self.requests_traced,
            "hops": {hop: histograms[hop].summary() for hop in sorted(histograms)},
        }

    def to_dict(self, timing: bool = True) -> Dict[str, object]:
        """The report as a JSON-compatible dict.

        ``timing=False`` restricts the payload to the deterministic face —
        serialize it with ``sort_keys=True`` and two runs of the same
        deterministic scenario produce identical bytes.
        """
        payload: Dict[str, object] = {
            "scenario": self.scenario,
            "plan": dict(
                self.plan,
                per_shard=self.per_shard_planned,
                planned_imbalance=self.imbalance(self.per_shard_planned),
            ),
            "shards": self.shards,
        }
        if self.deterministic_outcomes:
            payload["outcomes"] = {
                "requests": self.requests,
                "completed": self.completed,
                "rejected": self.rejected,
                "failed": self.failed,
                "hung": self.hung,
                "predictions_digest": self.predictions_digest(),
            }
        if timing:
            slo: Dict[str, object] = {
                "requests": self.requests,
                "completed": self.completed,
                "rejected": self.rejected,
                "failed": self.failed,
                "hung": self.hung,
                "elapsed_s": self.elapsed_s,
                "offered_rps": self.offered_rps(),
                "goodput_rps": self.goodput_rps(),
                "rejection_rate": self.rejected / self.requests if self.requests else 0.0,
                "latency": self.latency_summary(),
                "fault_log": self.fault_log,
            }
            trace = self.trace_summary()
            if trace is not None:
                slo["trace"] = trace
            if self.metrics_summary is not None:
                slo["metrics"] = self.metrics_summary
            if self.autoscale_summary is not None:
                slo["autoscale"] = self.autoscale_summary
            if self.cluster_stats is not None:
                observed = self.observed_per_shard()
                slo["cluster"] = {
                    # The merged-reservoir percentiles (true cluster p99).
                    "latency": self.cluster_stats["totals"]["latency"],
                    "per_shard_completed": observed,
                    "observed_imbalance": self.imbalance(observed),
                    "cache_hit_rate": self.cluster_stats["cache"]["hit_rate"],
                }
            payload["slo"] = slo
        return payload

    # -- human rendering ---------------------------------------------------------
    def render(self) -> str:
        """Multi-line human summary (the CLI's stdout report)."""
        latency = self.latency_summary()
        lines = [
            f"scenario {self.scenario['name']}: {self.requests} requests over "
            f"{self.plan['tenants']} tenants, {self.shards} shard(s)",
            f"  outcomes: {self.completed} ok / {self.rejected} rejected (503) / "
            f"{self.failed} failed / {self.hung} hung",
            f"  latency:  p50 {latency['p50_ms']:.2f}ms  p95 {latency['p95_ms']:.2f}ms  "
            f"p99 {latency['p99_ms']:.2f}ms  max {latency['max_ms']:.2f}ms",
            f"  goodput:  {self.goodput_rps():.0f} req/s "
            f"(offered {self.offered_rps():.0f} req/s, "
            f"elapsed {self.elapsed_s * 1e3:.1f}ms)",
            f"  balance:  planned imbalance {self.imbalance(self.per_shard_planned):.2f}",
        ]
        if self.cluster_stats is not None:
            merged = self.cluster_stats["totals"]["latency"]
            observed = self.observed_per_shard()
            lines.append(
                f"  cluster:  merged p99 {merged['p99_ms']:.2f}ms, observed imbalance "
                f"{self.imbalance(observed):.2f}, cache hit rate "
                f"{self.cluster_stats['cache']['hit_rate']:.2f}"
            )
        trace = self.trace_summary()
        if trace is not None:
            hops = ", ".join(
                f"{hop} p99 {summary['p99_ms']:.2f}ms"
                for hop, summary in trace["hops"].items()
            )
            lines.append(
                f"  trace:    {trace['requests_traced']}/{self.requests} traced — {hops}"
            )
        if self.metrics_summary is not None:
            alerts = self.metrics_summary.get("alerts", [])
            fired = [a for a in alerts if a.get("state") == "firing"]
            names = sorted({a["rule"] for a in fired})
            lines.append(
                f"  metrics:  {self.metrics_summary.get('samples', 0)} samples, "
                f"{self.metrics_summary.get('events', 0)} events, "
                f"{len(fired)} alert(s) fired"
                + (f" ({', '.join(names)})" if names else "")
            )
        if self.autoscale_summary is not None:
            actions = self.autoscale_summary.get("actions", {})
            lines.append(
                f"  autoscale: {self.autoscale_summary.get('ticks', 0)} ticks, "
                f"{actions.get('scale_out', 0)} out / {actions.get('scale_in', 0)} in / "
                f"{actions.get('suppress', 0)} suppressed / {actions.get('clamp', 0)} clamped, "
                f"peak {self.autoscale_summary.get('peak_shards', self.shards)} shard(s), "
                f"{self.autoscale_summary.get('shard_seconds', 0.0):.3f} shard-seconds"
            )
        for event in self.fault_log:
            lines.append(f"  fault:    request {event['at_request']}: {event['summary']}")
        return "\n".join(lines)
