"""Synthetic tenant fleets: many registered models, no training required.

Scenario runs need a fleet that is *cheap to build* (loadgen is about the
serving path, not the pruning path) yet exercises the real serving stack:
every tenant is a genuinely different sparsified model registered under a
stable id, served through real compressed-format engines.  Magnitude masks
stand in for CRISP pruning — same sparsity structure class, milliseconds to
build — exactly the construction the cluster test-suite and serving
benchmarks use.

Determinism: model weights are seeded per tenant, so the same
``(tenants, seed, ...)`` arguments rebuild the bit-identical fleet — which
is what makes a whole loadgen run (plan digest + predictions digest)
reproducible end to end.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..nn.models import build_model
from ..nn.models.base import prunable_layers
from ..serve.registry import ModelRegistry
from ..serve.types import EngineSpec

__all__ = ["synthetic_fleet", "FLEET_INPUT_SHAPE"]

#: (C, H, W) of the requests a default fleet serves.
FLEET_INPUT_SHAPE = (3, 12, 12)


def synthetic_fleet(
    tenants: int = 8,
    seed: int = 0,
    num_classes: int = 6,
    input_size: int = 12,
    sparsity: float = 0.7,
    model_name: str = "resnet_tiny",
    backend: str = "fast",
    spec: EngineSpec = None,
) -> Tuple[ModelRegistry, List[str]]:
    """Register ``tenants`` magnitude-sparsified models; returns (registry, ids).

    Tenant ``i`` is built from seed ``seed + i`` and registered as
    ``tenant-<i>``, so fleets are reproducible and ids sort in tenant order
    (the popularity models index into this list).  ``backend`` names the
    compute backend every tenant's engine spec pins (an explicit ``spec``
    overrides it wholesale).
    """
    if tenants < 1:
        raise ValueError(f"tenants must be >= 1, got {tenants}")
    spec = spec or EngineSpec(backend=backend, weight_format="csr")
    registry = ModelRegistry()
    model_ids = []
    for i in range(tenants):
        model = build_model(
            model_name, num_classes=num_classes, input_size=input_size, seed=seed + i
        )
        for layer in prunable_layers(model).values():
            w = layer.weight.data
            keep = (np.abs(w) >= np.quantile(np.abs(w), sparsity)).astype(np.float64)
            layer.weight.set_mask(keep)
        model_ids.append(
            registry.register(model, spec=spec, model_id=f"tenant-{i}")
        )
    return registry, model_ids
