"""Tests for hardware workload descriptions and extraction."""

import numpy as np
import pytest

from repro.hw.workload import LayerWorkload, resnet50_reference_layers, workloads_from_model
from repro.nn.models import resnet_tiny
from repro.nn.models.base import prunable_layers


class TestLayerWorkload:
    def test_derived_quantities(self):
        wl = LayerWorkload(
            name="conv", out_channels=64, reduction=576, output_positions=196,
            n=2, m=4, block_keep_ratio=0.5, weight_density=0.25,
        )
        assert wl.dense_macs == 64 * 576 * 196
        assert wl.effective_macs == pytest.approx(wl.dense_macs * 0.25)
        assert wl.nm_sparsity == pytest.approx(0.5)
        assert wl.weight_sparsity == pytest.approx(0.75)
        assert wl.dense_weight_bytes == 64 * 576
        assert wl.output_bytes == 64 * 196

    def test_fmap_bytes_fallback(self):
        wl = LayerWorkload(name="fc", out_channels=10, reduction=100, output_positions=1)
        assert wl.fmap_bytes == wl.input_bytes
        wl2 = LayerWorkload(
            name="conv", out_channels=10, reduction=90, output_positions=16,
            input_fmap_bytes=160.0,
        )
        assert wl2.fmap_bytes == 160.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(out_channels=0, reduction=4, output_positions=4),
            dict(out_channels=4, reduction=4, output_positions=4, n=5, m=4),
            dict(out_channels=4, reduction=4, output_positions=4, block_keep_ratio=0.0),
            dict(out_channels=4, reduction=4, output_positions=4, weight_density=1.5),
            dict(out_channels=4, reduction=4, output_positions=4, activation_density=0.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LayerWorkload(name="bad", **kwargs)

    def test_with_sparsity(self):
        wl = LayerWorkload(name="conv", out_channels=8, reduction=64, output_positions=16)
        sparse = wl.with_sparsity(n=1, m=4, block_keep_ratio=0.5)
        assert sparse.weight_density == pytest.approx(0.125)
        assert sparse.name == wl.name
        assert wl.weight_density == 1.0  # original unchanged


class TestReferenceLayers:
    def test_layer_count_and_names(self):
        layers = resnet50_reference_layers()
        assert len(layers) == 9
        assert layers[0].name == "conv1"
        assert layers[-1].name == "layer4.2.conv3"

    def test_sparsity_parameters_propagate(self):
        layers = resnet50_reference_layers(n=1, m=4, block_keep_ratio=0.4)
        for wl in layers:
            assert wl.n == 1 and wl.m == 4
            assert wl.weight_density == pytest.approx(0.1)

    def test_early_layers_have_more_positions(self):
        layers = resnet50_reference_layers()
        assert layers[1].output_positions > layers[-1].output_positions

    def test_late_layers_have_more_weights(self):
        layers = resnet50_reference_layers()
        assert layers[-1].dense_weight_bytes > layers[1].dense_weight_bytes

    def test_batch_scaling(self):
        b1 = resnet50_reference_layers(batch=1)
        b4 = resnet50_reference_layers(batch=4)
        assert b4[0].output_positions == 4 * b1[0].output_positions


class TestWorkloadsFromModel:
    def test_one_workload_per_prunable_layer(self, tiny_resnet):
        workloads = workloads_from_model(tiny_resnet)
        assert len(workloads) == len(prunable_layers(tiny_resnet))
        names = {wl.name for wl in workloads}
        assert names == set(prunable_layers(tiny_resnet))

    def test_density_reflects_masks(self, tiny_resnet):
        from repro.sparsity.nm import nm_mask

        for layer in prunable_layers(tiny_resnet).values():
            layer.set_reshaped_mask(nm_mask(np.abs(layer.reshaped_weight()), 1, 4, axis=0))
        workloads = workloads_from_model(tiny_resnet)
        conv_workloads = [wl for wl in workloads if wl.reduction > 16]
        for wl in conv_workloads:
            assert wl.weight_density == pytest.approx(0.25, abs=0.05)

    def test_positions_positive(self, tiny_mobilenet):
        for wl in workloads_from_model(tiny_mobilenet):
            assert wl.output_positions >= 1
            assert wl.fmap_bytes > 0
