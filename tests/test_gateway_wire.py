"""Wire round-trip guarantees of the Serving API v2 envelopes.

Property-style over seeded payloads: every envelope shape (requests,
success / failure / partial-result responses) and every taxonomy error must
survive ``to_json`` / ``from_json`` byte-stably — decode(encode(x)) encodes
to the identical bytes, and the typed objects come back equal.
"""

import json

import numpy as np
import pytest

from repro.errors import (
    ApiError,
    DeadlineExceededError,
    ERROR_CODES,
    InternalError,
    InvalidArgumentError,
    NotFoundError,
    ResourceExhaustedError,
    UnavailableError,
    error_from_dict,
    error_from_exception,
)
from repro.cluster.shard import ShardKilledError, ShardOverloadError
from repro.gateway import API_VERSION, ApiRequest, ApiResponse
from repro.serve.types import PredictRequest, PredictResponse

SEEDS = range(8)


def _random_predict_payload(rng) -> dict:
    """A seeded PredictRequest wire dict (the payload class envelopes carry)."""
    batch = rng.standard_normal((int(rng.integers(1, 3)), 3, 4, 4))
    request = PredictRequest(
        model_id=f"tenant-{int(rng.integers(0, 16))}",
        inputs=batch,
        request_id=f"req-{int(rng.integers(0, 10**6)):06d}",
    )
    return request.to_dict()


def _random_request(rng) -> ApiRequest:
    method = ["predict", "predict_batch", "stats", "health"][int(rng.integers(0, 4))]
    if method == "predict":
        payload = _random_predict_payload(rng)
    elif method == "predict_batch":
        payload = {"requests": [_random_predict_payload(rng) for _ in range(3)]}
    else:
        payload = {}
    return ApiRequest(
        method=method,
        payload=payload,
        request_id=f"call-{int(rng.integers(0, 10**6)):06d}",
        tenant=f"tenant-{int(rng.integers(0, 4))}",
        deadline_ms=float(rng.integers(1, 5000)) if rng.random() < 0.5 else None,
    )


class TestRequestRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_byte_stable(self, seed):
        rng = np.random.default_rng(seed)
        request = _random_request(rng)
        encoded = request.to_json()
        decoded = ApiRequest.from_json(encoded)
        assert decoded == request
        assert decoded.to_json() == encoded  # bytes, not just equality

    def test_defaults_fill_in(self):
        decoded = ApiRequest.from_json(json.dumps({"method": "health"}))
        assert decoded.version == API_VERSION
        assert decoded.tenant == "default"
        assert decoded.payload == {} and decoded.deadline_ms is None

    def test_malformed_json_is_invalid_argument(self):
        with pytest.raises(InvalidArgumentError):
            ApiRequest.from_json("{not json")
        with pytest.raises(InvalidArgumentError):
            ApiRequest.from_json(json.dumps({"payload": {}}))  # no method
        with pytest.raises(InvalidArgumentError):
            ApiRequest.from_json(json.dumps(["an", "array"]))

    def test_negative_deadline_rejected(self):
        with pytest.raises(InvalidArgumentError):
            ApiRequest("predict", deadline_ms=-1)


class TestResponseRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_success_byte_stable(self, seed):
        rng = np.random.default_rng(seed)
        logits = rng.standard_normal((2, 5))
        response = PredictResponse(
            request_id="req-000001",
            model_id="tenant-1",
            logits=logits,
            classes=logits.argmax(axis=1),
            batched_with=int(rng.integers(1, 5)),
        )
        envelope = ApiResponse.success(
            ApiRequest("predict", request_id="call-1"),
            {"response": response.to_dict()},
        )
        encoded = envelope.to_json()
        decoded = ApiResponse.from_json(encoded)
        assert decoded == envelope
        assert decoded.to_json() == encoded
        # The carried payload reconstructs the typed response bit-exactly
        # (float64 repr round-trips through JSON losslessly).
        rebuilt = PredictResponse.from_dict(decoded.payload["response"])
        assert np.array_equal(rebuilt.logits, logits)
        assert rebuilt.logits.dtype == logits.dtype

    @pytest.mark.parametrize("code,cls", sorted(ERROR_CODES.items()))
    def test_failure_byte_stable_per_code(self, code, cls):
        error = cls(f"{code} happened", details={"tenant": "t0", "n": 3})
        envelope = ApiResponse.failure(ApiRequest("predict", request_id="x"), error)
        encoded = envelope.to_json()
        decoded = ApiResponse.from_json(encoded)
        assert decoded.to_json() == encoded
        assert decoded.http_status == cls.http_status
        rebuilt = decoded.to_error()
        assert type(rebuilt) is cls
        assert rebuilt.code == code
        assert rebuilt.message == error.message
        assert rebuilt.details == error.details
        assert rebuilt.retryable == cls.retryable

    @pytest.mark.parametrize("seed", SEEDS)
    def test_partial_results_round_trip(self, seed):
        """An error envelope carrying partial batch results loses nothing."""
        rng = np.random.default_rng(seed)
        logits = rng.standard_normal((1, 4))
        ok_item = {
            "response": PredictResponse(
                request_id="req-1", model_id="tenant-0",
                logits=logits, classes=logits.argmax(axis=1),
            ).to_dict()
        }
        bad_item = {"error": NotFoundError("ghost tenant").to_dict()}
        envelope = ApiResponse.failure(
            ApiRequest("predict_batch", request_id="batch-1"),
            NotFoundError("ghost tenant"),
            partial={"results": [ok_item, bad_item], "completed": 1, "failed": 1},
        )
        encoded = envelope.to_json()
        decoded = ApiResponse.from_json(encoded)
        assert decoded.to_json() == encoded
        assert not decoded.ok and decoded.payload["completed"] == 1
        rebuilt = PredictResponse.from_dict(decoded.payload["results"][0]["response"])
        assert np.array_equal(rebuilt.logits, logits)
        item_error = error_from_dict(decoded.payload["results"][1]["error"])
        assert isinstance(item_error, NotFoundError)

    def test_raise_for_error(self):
        ok = ApiResponse.success(ApiRequest("health"), {})
        assert ok.raise_for_error() is ok
        bad = ApiResponse.failure(None, UnavailableError("down"))
        with pytest.raises(UnavailableError):
            bad.raise_for_error()
        with pytest.raises(ValueError):
            ok.to_error()


class TestErrorTaxonomy:
    def test_codes_are_stable(self):
        assert set(ERROR_CODES) == {
            "INVALID_ARGUMENT",
            "NOT_FOUND",
            "RESOURCE_EXHAUSTED",
            "UNAVAILABLE",
            "DEADLINE_EXCEEDED",
            "INTERNAL",
        }

    def test_legacy_compatibility_hierarchy(self):
        """The old except clauses keep catching the new taxonomy."""
        assert issubclass(InvalidArgumentError, ValueError)
        assert issubclass(NotFoundError, KeyError)
        assert issubclass(UnavailableError, RuntimeError)
        assert issubclass(DeadlineExceededError, TimeoutError)
        assert issubclass(ShardOverloadError, UnavailableError)
        assert issubclass(ShardKilledError, UnavailableError)

    def test_not_found_str_is_clean(self):
        # KeyError would repr() the message; the taxonomy keeps it readable.
        assert str(NotFoundError("no such model")) == "no such model"

    def test_error_from_exception_mapping(self):
        assert error_from_exception(KeyError("m")).code == "NOT_FOUND"
        assert error_from_exception(ValueError("v")).code == "INVALID_ARGUMENT"
        assert error_from_exception(TypeError("t")).code == "INVALID_ARGUMENT"
        assert error_from_exception(TimeoutError()).code == "DEADLINE_EXCEEDED"
        assert error_from_exception(RuntimeError("r")).code == "UNAVAILABLE"
        assert error_from_exception(OSError("boom")).code == "INTERNAL"
        # Native taxonomy errors pass through as the same object.
        native = ShardOverloadError("queue full")
        assert error_from_exception(native) is native

    def test_future_timeout_maps_to_deadline(self):
        from concurrent.futures import TimeoutError as FutureTimeoutError

        assert error_from_exception(FutureTimeoutError()).code == "DEADLINE_EXCEEDED"

    def test_unknown_code_decodes_to_internal(self):
        rebuilt = error_from_dict({"code": "SOMETHING_NEW", "message": "hi"})
        assert isinstance(rebuilt, InternalError)
        assert rebuilt.details["original_code"] == "SOMETHING_NEW"

    def test_response_shaped_duck_typing(self):
        error = ResourceExhaustedError("slow down")
        assert error.ok is False and error.status == 429
        assert isinstance(error, ApiError)
