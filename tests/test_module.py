"""Tests for Parameter / Module / Sequential plumbing."""

import numpy as np
import pytest

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import Linear, ReLU


class TestParameter:
    def test_basic_properties(self):
        p = Parameter(np.ones((3, 4)), name="w")
        assert p.shape == (3, 4)
        assert p.size == 12
        assert p.density() == 1.0
        assert p.sparsity() == 0.0

    def test_accumulate_grad(self):
        p = Parameter(np.zeros((2, 2)))
        p.accumulate_grad(np.ones((2, 2)))
        p.accumulate_grad(np.ones((2, 2)))
        np.testing.assert_allclose(p.grad, 2 * np.ones((2, 2)))
        p.zero_grad()
        assert p.grad is None

    def test_accumulate_grad_shape_mismatch(self):
        p = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            p.accumulate_grad(np.ones((3, 3)))

    def test_mask_application(self):
        p = Parameter(np.full((2, 2), 3.0))
        mask = np.array([[1.0, 0.0], [0.0, 1.0]])
        p.set_mask(mask)
        np.testing.assert_allclose(p.data, [[3, 0], [0, 3]])
        assert p.density() == 0.5
        assert p.sparsity() == 0.5

    def test_mask_shape_mismatch(self):
        p = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            p.set_mask(np.ones((3, 3)))

    def test_clear_mask(self):
        p = Parameter(np.ones((2, 2)))
        p.set_mask(np.zeros((2, 2)))
        p.set_mask(None)
        assert p.mask is None

    def test_effective_keeps_dense_data(self):
        p = Parameter(np.full((4,), 2.0).reshape(2, 2))
        p.mask = np.array([[1.0, 0.0], [1.0, 1.0]])
        eff = p.effective()
        np.testing.assert_allclose(eff, [[2, 0], [2, 2]])
        # data itself untouched (the straight-through-estimator requirement)
        np.testing.assert_allclose(p.data, 2.0)


class TestModule:
    def _toy_module(self):
        class Toy(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(4, 3, seed=0)
                self.act = ReLU()
                self.fc2 = Linear(3, 2, seed=0)

            def forward(self, x):
                return self.fc2(self.act(self.fc1(x)))

            def backward(self, grad):
                return self.fc1.backward(self.act.backward(self.fc2.backward(grad)))

        return Toy()

    def test_named_parameters(self):
        toy = self._toy_module()
        names = [name for name, _ in toy.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names
        assert len(names) == 4

    def test_named_modules(self):
        toy = self._toy_module()
        names = [name for name, _ in toy.named_modules()]
        assert "" in names and "fc1" in names and "act" in names

    def test_train_eval_recursive(self):
        toy = self._toy_module()
        toy.eval()
        assert not toy.training and not toy.fc1.training
        toy.train()
        assert toy.training and toy.fc2.training

    def test_zero_grad(self, rng):
        toy = self._toy_module()
        x = rng.normal(size=(2, 4))
        out = toy(x)
        toy.backward(np.ones_like(out))
        assert toy.fc1.weight.grad is not None
        toy.zero_grad()
        assert toy.fc1.weight.grad is None

    def test_state_dict_roundtrip(self, rng):
        toy = self._toy_module()
        toy.fc1.weight.set_mask(np.ones_like(toy.fc1.weight.data))
        state = toy.state_dict()

        other = self._toy_module()
        other.fc1.weight.data += 5.0
        other.load_state_dict(state)
        np.testing.assert_allclose(other.fc1.weight.data, toy.fc1.weight.data)
        assert other.fc1.weight.mask is not None

    def test_state_dict_shape_mismatch_raises(self):
        toy = self._toy_module()
        state = toy.state_dict()
        state["fc1.weight"] = np.zeros((7, 7))
        with pytest.raises(ValueError):
            toy.load_state_dict(state)

    def test_count_parameters(self):
        toy = self._toy_module()
        assert toy.count_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_apply_masks(self):
        toy = self._toy_module()
        mask = np.zeros_like(toy.fc1.weight.data)
        toy.fc1.weight.mask = mask
        toy.fc1.weight.data += 1.0
        toy.apply_masks()
        np.testing.assert_allclose(toy.fc1.weight.data, 0.0)


class TestSequential:
    def test_forward_backward_order(self, rng):
        seq = Sequential(Linear(4, 8, seed=0), ReLU(), Linear(8, 2, seed=0))
        x = rng.normal(size=(3, 4))
        out = seq(x)
        assert out.shape == (3, 2)
        grad_in = seq.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_len_getitem_iter(self):
        layers = [Linear(2, 2, seed=0), ReLU()]
        seq = Sequential(*layers)
        assert len(seq) == 2
        assert seq[1] is layers[1]
        assert list(iter(seq)) == layers

    def test_append(self):
        seq = Sequential(Linear(2, 2, seed=0))
        seq.append(ReLU())
        assert len(seq) == 2

    def test_parameters_collected(self):
        seq = Sequential(Linear(2, 3, seed=0), Linear(3, 4, seed=0))
        names = [name for name, _ in seq.named_parameters()]
        assert "0.weight" in names and "1.bias" in names
