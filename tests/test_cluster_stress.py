"""Concurrency stress tier: hammer the cluster until something reconciles.

Marked ``stress`` — excluded from tier-1 (`pytest -x -q` picks up the
``-m "not stress"`` default from pytest.ini) and run as its own CI job via
``pytest -q -m stress tests``.

The scenario: many frontend threads driving personalize/predict/evict
cycles through :meth:`ClusterService.submit` against a deliberately tiny
:class:`EngineCache` (capacity 1 per shard, so every other dispatch is an
eviction + rebuild) and a short admission queue (so 503s actually happen).
The assertions are the runtime's concurrency contract:

* no deadlock — every thread finishes inside a hard wall-clock budget;
* no dropped futures — every submission resolves to a response, a
  rejection, or an exception;
* the books balance — telemetry counters reconcile exactly with what the
  callers observed: accepted == completed + failed, and every observed
  503 is counted as a rejection.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterService, RejectedResponse
from repro.loadgen import synthetic_fleet
from repro.serve import PredictRequest

pytestmark = pytest.mark.stress

THREADS = 8
ITERATIONS = 20
REQUESTS_PER_ITERATION = 3
JOIN_TIMEOUT_S = 120.0


@pytest.mark.stress
def test_concurrent_submit_personalize_evict_cycles_reconcile():
    registry, model_ids = synthetic_fleet(tenants=8, seed=0)
    cluster = ClusterService(
        ClusterConfig(
            shards=2,
            cache_capacity=1,  # tiny: every tenant switch is an evict+rebuild
            max_pending=16,
            high_water=8,  # short queue: admission control must fire
            flush_interval_s=0.001,
        ),
        registry=registry,
    )
    # The real personalize path trains a model; the stress tier only needs
    # its service-level effect — "this tenant changed, evict it everywhere".
    cluster.service.personalize = lambda request, **kw: request

    rng = np.random.default_rng(0)
    batches = [rng.normal(size=(1, 3, 12, 12)) for _ in range(4)]
    futures_by_thread = [[] for _ in range(THREADS)]
    errors = []

    def hammer(thread_id: int) -> None:
        try:
            thread_rng = np.random.default_rng(thread_id)
            for iteration in range(ITERATIONS):
                for j in range(REQUESTS_PER_ITERATION):
                    tenant = model_ids[int(thread_rng.integers(0, len(model_ids)))]
                    request = PredictRequest(
                        tenant,
                        batches[int(thread_rng.integers(0, len(batches)))],
                        request_id=f"s{thread_id}-{iteration:03d}-{j}",
                    )
                    futures_by_thread[thread_id].append(
                        (tenant, cluster.submit(request))
                    )
                if iteration % 5 == 4:
                    # Re-personalization storm: evicts the tenant's engine on
                    # every shard while other threads are dispatching to it.
                    victim = model_ids[int(thread_rng.integers(0, len(model_ids)))]
                    cluster.personalize(victim)
        except Exception as exc:  # pragma: no cover - the failure being hunted
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(i,), name=f"stress-{i}")
        for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT_S)
    stuck = [t.name for t in threads if t.is_alive()]
    assert not stuck, f"deadlock: threads never finished: {stuck}"
    assert not errors, f"submission threads raised: {errors!r}"

    ok = rejected = failed = unresolved = 0
    for per_thread in futures_by_thread:
        for tenant, future in per_thread:
            try:
                result = future.result(timeout=30)
            except Exception:
                failed += 1
                continue
            if isinstance(result, RejectedResponse):
                assert result.status == 503
                rejected += 1
            else:
                assert result.status == 200
                assert result.model_id == tenant
                ok += 1
    total = THREADS * ITERATIONS * REQUESTS_PER_ITERATION
    assert ok + rejected + failed + unresolved == total  # no dropped futures

    cluster.shutdown()
    totals = cluster.stats()["totals"]
    # The books balance: what the workers accepted is exactly what was
    # completed or failed, and every 503 the callers saw was counted.
    assert totals["submitted"] == ok + failed
    assert totals["completed"] == ok
    assert totals["failed"] == failed
    assert totals["rejected"] == rejected
    assert totals["latency"]["count"] == ok


@pytest.mark.stress
def test_concurrent_scale_out_in_under_load_never_drops_a_future():
    """Membership churn (add/remove shard) racing live traffic."""
    registry, model_ids = synthetic_fleet(tenants=6, seed=0)
    cluster = ClusterService(
        ClusterConfig(shards=2, cache_capacity=2, max_pending=512),
        registry=registry,
    )
    futures = []
    stop = threading.Event()
    errors = []

    def traffic() -> None:
        rng = np.random.default_rng(99)
        i = 0
        try:
            while not stop.is_set():
                tenant = model_ids[int(rng.integers(0, len(model_ids)))]
                request = PredictRequest(
                    tenant, rng.normal(size=(1, 3, 12, 12)), request_id=f"c-{i:05d}"
                )
                futures.append(cluster.submit(request))
                i += 1
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    pump = threading.Thread(target=traffic, name="traffic-pump")
    pump.start()
    try:
        for _ in range(3):
            new_shard = cluster.add_shard()
            # Let traffic land on the grown fleet before shrinking it again.
            # (No drain() here: under a continuous pump the queues never
            # empty, by design — remove_shard drains the leaving shard.)
            stop.wait(0.05)
            cluster.remove_shard(new_shard)
    finally:
        stop.set()
        pump.join(timeout=JOIN_TIMEOUT_S)
    assert not pump.is_alive(), "traffic pump deadlocked"
    assert not errors, f"traffic pump raised: {errors!r}"
    cluster.shutdown()

    resolved = clean_errors = 0
    for future in futures:
        # A submit that raced the shard's removal may resolve to a clean
        # shutdown error; what is forbidden is a future that never resolves.
        try:
            result = future.result(timeout=30)
        except RuntimeError:
            clean_errors += 1
        else:
            assert result.status in (200, 503)
        resolved += 1
    assert resolved == len(futures)
    assert clean_errors <= 3  # at most one straggler per removal race
