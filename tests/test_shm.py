"""Tests for the shared-memory weight store (:mod:`repro.shm`)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import InternalError, NotFoundError
from repro.nn.models import build_model
from repro.nn.models.base import prunable_layers
from repro.serve import EngineSpec, ModelRegistry
from repro.shm import SegmentLayout, SharedModelSource, SharedWeightStore, attach_segment
from repro.shm.store import _view


def _sparsified_model(seed=0, num_classes=5, input_size=12):
    model = build_model("resnet_tiny", num_classes=num_classes, input_size=input_size, seed=seed)
    for layer in prunable_layers(model).values():
        w = layer.weight.data
        layer.weight.set_mask((np.abs(w) >= np.quantile(np.abs(w), 0.6)).astype(np.float64))
    return model


def _registry(spec, tenants=1):
    registry = ModelRegistry()
    ids = [
        registry.register(_sparsified_model(seed=s), spec=spec, model_id=f"tenant-{s}")
        for s in range(tenants)
    ]
    return registry, ids


def _shm_exists(name):
    return os.path.exists(f"/dev/shm/{name}")


class TestSegmentLayout:
    def test_preserves_memory_order(self):
        """F-order arrays must round-trip F-order: repacking a transposed
        dense weight C-contiguously changes BLAS summation order (a 1-ulp
        drift that breaks the bit-exact serving contract)."""
        from multiprocessing import shared_memory

        c_arr = np.arange(12.0).reshape(3, 4)
        f_arr = np.asfortranarray(np.arange(12.0).reshape(3, 4) + 100)
        layout = SegmentLayout()
        c_desc = layout.add(c_arr)
        f_desc = layout.add(f_arr)
        assert c_desc["order"] == "C" and f_desc["order"] == "F"

        segment = shared_memory.SharedMemory(create=True, size=max(1, layout.size))
        try:
            layout.write_into(segment)
            c_back = _view(segment, c_desc)
            f_back = _view(segment, f_desc)
            np.testing.assert_array_equal(c_back, c_arr)
            np.testing.assert_array_equal(f_back, f_arr)
            assert c_back.flags.c_contiguous
            assert f_back.flags.f_contiguous
            assert not f_back.flags.writeable  # zero-copy views are read-only
        finally:
            segment.close()
            segment.unlink()


class TestSharedWeightStore:
    @pytest.mark.parametrize(
        "weight_format", ["dense", "csr", "blocked-ellpack", "crisp"]
    )
    def test_round_trip_is_bit_exact_for_every_format(self, weight_format, rng):
        spec = EngineSpec(backend="fast", weight_format=weight_format, block_size=8)
        registry, (model_id,) = _registry(spec)
        batch = rng.normal(size=(2, 3, 12, 12))
        oracle = registry.build_engine(model_id).predict(batch)

        with SharedWeightStore(registry) as store:
            entry, version = store.ensure(model_id)
            # Parent-side consumer: the store maps its own segments.
            np.testing.assert_array_equal(store.build_engine(model_id).predict(batch), oracle)
            # Worker-side consumer: a fresh attach by segment name.
            source = SharedModelSource()
            try:
                source.install(entry)
                np.testing.assert_array_equal(
                    source.build_engine(model_id).predict(batch), oracle
                )
            finally:
                source.close()

    def test_ensure_is_cached_until_reregister(self, rng):
        registry, (model_id,) = _registry(EngineSpec(backend="fast", weight_format="csr"))
        store = SharedWeightStore(registry)
        try:
            entry1, v1 = store.ensure(model_id)
            entry2, v2 = store.ensure(model_id)
            assert v1 == v2 and entry1 is entry2  # same record -> no republish

            # Re-registering the id (re-personalization) replaces the record
            # object; the next ensure publishes a fresh segment and retires
            # the stale one from /dev/shm immediately.
            registry.register(
                _sparsified_model(seed=99), spec=EngineSpec(backend="fast", weight_format="csr"),
                model_id=model_id,
            )
            entry3, v3 = store.ensure(model_id)
            assert v3 > v2 and entry3["segment"] != entry1["segment"]
            assert not _shm_exists(entry1["segment"])
            assert _shm_exists(entry3["segment"])
            batch = rng.normal(size=(1, 3, 12, 12))
            np.testing.assert_array_equal(
                store.build_engine(model_id).predict(batch),
                registry.build_engine(model_id).predict(batch),
            )
        finally:
            store.close()

    def test_close_unlinks_every_segment_ever_created(self):
        registry, ids = _registry(EngineSpec(backend="fast", weight_format="csr"), tenants=3)
        store = SharedWeightStore(registry)
        for model_id in ids:
            store.ensure(model_id)
        live = store.segment_names()
        assert len(live) == 3 and all(_shm_exists(name) for name in live)

        store.close()
        assert store.segment_names(live_only=True) == []
        # The bookkeeping remembers every name, and none survives on disk.
        every = store.segment_names(live_only=False)
        assert len(every) == 3
        assert not any(_shm_exists(name) for name in every)
        store.close()  # idempotent

    def test_refcount_tracks_attached_workers(self):
        registry, _ = _registry(EngineSpec(backend="fast", weight_format="csr"))
        store = SharedWeightStore(registry)
        assert store.refs == 0
        store.acquire()
        store.acquire()
        assert store.refs == 2
        store.release()
        store.release()
        store.release()  # over-release clamps at zero
        assert store.refs == 0
        store.close()

    def test_closed_store_refuses_publication(self):
        registry, (model_id,) = _registry(EngineSpec(backend="fast", weight_format="csr"))
        store = SharedWeightStore(registry)
        store.close()
        with pytest.raises(InternalError):
            store.ensure(model_id)

    def test_unknown_model_raises_key_error(self):
        registry, _ = _registry(EngineSpec(backend="fast", weight_format="csr"))
        with SharedWeightStore(registry) as store:
            with pytest.raises(KeyError):
                store.ensure("ghost")


class TestSharedModelSource:
    def test_missing_manifest_is_not_found(self):
        source = SharedModelSource()
        with pytest.raises(NotFoundError):
            source.build_engine("ghost")
        assert "ghost" not in source and len(source) == 0

    def test_install_dedupes_by_version(self):
        registry, (model_id,) = _registry(EngineSpec(backend="fast", weight_format="csr"))
        with SharedWeightStore(registry) as store:
            entry, _ = store.ensure(model_id)
            source = SharedModelSource()
            try:
                assert source.install(entry) is False  # fresh install
                assert source.install(entry) is False  # same version: no-op
                assert source.model_ids() == [model_id]
            finally:
                source.close()

    def test_attach_segment_maps_live_named_segment(self):
        registry, (model_id,) = _registry(EngineSpec(backend="fast", weight_format="csr"))
        with SharedWeightStore(registry) as store:
            entry, _ = store.ensure(model_id)
            segment = attach_segment(entry["segment"])
            assert segment.buf is not None
            segment.close()
