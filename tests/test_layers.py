"""Tests for the layer classes (shapes, gradients, pruning views)."""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
    PRUNABLE_LAYER_TYPES,
)


class TestConv2dLayer:
    def test_forward_shape(self, rng):
        layer = Conv2d(3, 8, 3, stride=1, padding=1, seed=0)
        x = rng.normal(size=(2, 3, 6, 6))
        assert layer(x).shape == (2, 8, 6, 6)

    def test_forward_shape_stride(self, rng):
        layer = Conv2d(3, 4, 3, stride=2, padding=1, seed=0)
        x = rng.normal(size=(1, 3, 8, 8))
        assert layer(x).shape == (1, 4, 4, 4)

    def test_backward_accumulates_grads(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, seed=0)
        x = rng.normal(size=(2, 2, 5, 5))
        out = layer(x)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_mask_zeroes_contributions(self, rng):
        layer = Conv2d(2, 2, 1, bias=False, seed=0)
        x = rng.normal(size=(1, 2, 3, 3))
        layer.weight.set_mask(np.zeros_like(layer.weight.data))
        np.testing.assert_allclose(layer(x), 0.0)

    def test_masked_forward_preserves_dense_data(self, rng):
        layer = Conv2d(2, 2, 1, bias=False, seed=0)
        dense = layer.weight.data.copy()
        layer.weight.mask = np.zeros_like(dense)
        layer(rng.normal(size=(1, 2, 3, 3)))
        np.testing.assert_allclose(layer.weight.data, dense)

    def test_reshaped_weight_roundtrip(self, rng):
        layer = Conv2d(3, 5, 3, seed=0)
        reshaped = layer.reshaped_weight()
        assert reshaped.shape == (3 * 3 * 3, 5)
        original = layer.weight.data.copy()
        layer.set_reshaped_weight(reshaped)
        np.testing.assert_allclose(layer.weight.data, original)

    def test_set_reshaped_mask(self, rng):
        layer = Conv2d(2, 4, 3, seed=0)
        mask2d = np.zeros((2 * 9, 4))
        mask2d[:, 0] = 1.0
        layer.set_reshaped_mask(mask2d)
        # Only output channel 0 has non-zero weights.
        assert np.count_nonzero(layer.weight.data[1:]) == 0
        assert np.count_nonzero(layer.weight.data[0]) > 0

    def test_set_reshaped_mask_bad_shape(self):
        layer = Conv2d(2, 4, 3, seed=0)
        with pytest.raises(ValueError):
            layer.set_reshaped_mask(np.ones((5, 5)))

    def test_reshaped_grad(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, seed=0)
        assert layer.reshaped_grad() is None
        x = rng.normal(size=(1, 2, 4, 4))
        out = layer(x)
        layer.backward(np.ones_like(out))
        grad2d = layer.reshaped_grad()
        assert grad2d.shape == (2 * 9, 3)

    def test_flops_per_output(self):
        layer = Conv2d(3, 8, 3)
        assert layer.flops_per_output() == 2 * 3 * 9 * 8


class TestDepthwiseConv2dLayer:
    def test_forward_backward(self, rng):
        layer = DepthwiseConv2d(4, 3, padding=1, seed=0)
        x = rng.normal(size=(2, 4, 5, 5))
        out = layer(x)
        assert out.shape == (2, 4, 5, 5)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert layer.weight.grad is not None

    def test_not_prunable(self):
        assert DepthwiseConv2d(2, 3).prunable is False


class TestLinearLayer:
    def test_forward_backward(self, rng):
        layer = Linear(6, 4, seed=0)
        x = rng.normal(size=(3, 6))
        out = layer(x)
        assert out.shape == (3, 4)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_reshaped_views(self, rng):
        layer = Linear(6, 4, seed=0)
        assert layer.reshaped_weight().shape == (6, 4)
        mask2d = np.zeros((6, 4))
        mask2d[:, :2] = 1.0
        layer.set_reshaped_mask(mask2d)
        assert layer.weight.sparsity() == pytest.approx(0.5)

    def test_gradcheck(self, rng, gradcheck):
        layer = Linear(3, 2, seed=0)
        x = rng.normal(size=(2, 3))
        grad_out = rng.normal(size=(2, 2))
        layer(x)
        layer.backward(grad_out)

        def loss():
            return float(np.sum(layer.forward(x) * grad_out))

        np.testing.assert_allclose(layer.weight.grad, gradcheck(loss, layer.weight.data), atol=1e-4)


class TestBatchNormLayer:
    def test_train_vs_eval(self, rng):
        layer = BatchNorm2d(3)
        x = rng.normal(loc=2.0, size=(8, 3, 4, 4))
        layer.train()
        out_train = layer(x)
        assert abs(out_train.mean()) < 1e-6
        layer.eval()
        out_eval = layer(x)
        # Eval uses running stats which only partially adapted (momentum 0.1).
        assert abs(out_eval.mean()) > 1e-3

    def test_backward(self, rng):
        layer = BatchNorm2d(2)
        x = rng.normal(size=(4, 2, 3, 3))
        out = layer(x)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert layer.gamma.grad is not None and layer.beta.grad is not None


class TestSimpleLayers:
    def test_relu_layers(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        for layer in (ReLU(), ReLU6()):
            out = layer(x)
            grad = layer.backward(np.ones_like(out))
            assert grad.shape == x.shape

    def test_pooling_layers(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        for layer, expected in ((MaxPool2d(2), (2, 3, 4, 4)), (AvgPool2d(2), (2, 3, 4, 4))):
            out = layer(x)
            assert out.shape == expected
            assert layer.backward(np.ones_like(out)).shape == x.shape

    def test_global_avg_pool_layer(self, rng):
        layer = GlobalAvgPool2d()
        x = rng.normal(size=(2, 5, 4, 4))
        out = layer(x)
        assert out.shape == (2, 5)
        assert layer.backward(np.ones_like(out)).shape == x.shape

    def test_flatten(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer(x)
        assert out.shape == (2, 48)
        assert layer.backward(out).shape == x.shape

    def test_identity(self, rng):
        layer = Identity()
        x = rng.normal(size=(2, 3))
        np.testing.assert_allclose(layer(x), x)
        np.testing.assert_allclose(layer.backward(x), x)

    def test_dropout_eval_is_identity(self, rng):
        layer = Dropout(0.5, seed=0)
        layer.eval()
        x = rng.normal(size=(4, 4))
        np.testing.assert_allclose(layer(x), x)

    def test_dropout_train_scales(self, rng):
        layer = Dropout(0.5, seed=0)
        layer.train()
        x = np.ones((1000,)).reshape(10, 100)
        out = layer(x)
        # Inverted dropout keeps the expectation roughly constant.
        assert out.mean() == pytest.approx(1.0, abs=0.15)
        kept = out != 0
        np.testing.assert_allclose(out[kept], 2.0)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_prunable_layer_types(self):
        assert Conv2d in PRUNABLE_LAYER_TYPES
        assert Linear in PRUNABLE_LAYER_TYPES
        assert DepthwiseConv2d not in PRUNABLE_LAYER_TYPES
