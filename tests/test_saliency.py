"""Tests for the class-aware saliency score and alternative criteria."""

import numpy as np
import pytest

from repro.nn.models.base import prunable_layers
from repro.pruning.saliency import (
    SALIENCY_CRITERIA,
    class_aware_saliency,
    compute_saliency,
    gradient_saliency,
    magnitude_saliency,
    random_saliency,
)


class TestMagnitudeSaliency:
    def test_shapes_match_reshaped_weights(self, tiny_resnet):
        saliency = magnitude_saliency(tiny_resnet)
        layers = prunable_layers(tiny_resnet)
        assert set(saliency) == set(layers)
        for name, layer in layers.items():
            assert saliency[name].shape == layer.reshaped_weight().shape

    def test_equals_abs_weight(self, tiny_resnet):
        saliency = magnitude_saliency(tiny_resnet)
        layers = prunable_layers(tiny_resnet)
        name = next(iter(layers))
        np.testing.assert_allclose(saliency[name], np.abs(layers[name].reshaped_weight()))

    def test_non_negative(self, tiny_vgg):
        for scores in magnitude_saliency(tiny_vgg).values():
            assert np.all(scores >= 0)


class TestClassAwareSaliency:
    def test_shapes_and_nonnegativity(self, tiny_resnet, tiny_loaders):
        train_loader, _ = tiny_loaders
        saliency = class_aware_saliency(tiny_resnet, iter(train_loader), max_batches=2)
        layers = prunable_layers(tiny_resnet)
        assert set(saliency) == set(layers)
        for name, scores in saliency.items():
            assert scores.shape == layers[name].reshaped_weight().shape
            assert np.all(scores >= 0)

    def test_model_weights_unchanged(self, tiny_resnet, tiny_loaders):
        train_loader, _ = tiny_loaders
        before = {n: p.data.copy() for n, p in tiny_resnet.named_parameters()}
        class_aware_saliency(tiny_resnet, iter(train_loader), max_batches=1)
        for name, param in tiny_resnet.named_parameters():
            np.testing.assert_allclose(param.data, before[name])

    def test_depends_on_class_subset(self, tiny_dataset):
        """Different user-class subsets must yield different saliency maps."""
        from repro.data import build_user_loaders, sample_user_profile
        from repro.nn.models import resnet_tiny

        model = resnet_tiny(num_classes=2, input_size=tiny_dataset.image_size, seed=0)
        profile_a = sample_user_profile(tiny_dataset, 2, seed=10)
        profile_b = sample_user_profile(tiny_dataset, 2, seed=20)
        assert profile_a.preferred_classes != profile_b.preferred_classes
        loader_a, _ = build_user_loaders(tiny_dataset, profile_a, batch_size=16)
        loader_b, _ = build_user_loaders(tiny_dataset, profile_b, batch_size=16)

        sal_a = class_aware_saliency(model, iter(loader_a), max_batches=2)
        sal_b = class_aware_saliency(model, iter(loader_b), max_batches=2)
        name = next(iter(sal_a))
        assert not np.allclose(sal_a[name], sal_b[name])

    def test_zero_for_masked_weight_times_zero_grad(self, tiny_resnet, tiny_loaders):
        """Saliency is |grad * weight|: zero weights yield zero saliency."""
        train_loader, _ = tiny_loaders
        layers = prunable_layers(tiny_resnet)
        name, layer = next(iter(layers.items()))
        layer.weight.data[:] = 0.0
        saliency = class_aware_saliency(tiny_resnet, iter(train_loader), max_batches=1)
        np.testing.assert_allclose(saliency[name], 0.0)


class TestGradientAndRandomSaliency:
    def test_gradient_saliency_shapes(self, tiny_resnet, tiny_loaders):
        train_loader, _ = tiny_loaders
        saliency = gradient_saliency(tiny_resnet, iter(train_loader), max_batches=1)
        assert set(saliency) == set(prunable_layers(tiny_resnet))

    def test_random_saliency_deterministic_per_seed(self, tiny_resnet):
        a = random_saliency(tiny_resnet, seed=3)
        b = random_saliency(tiny_resnet, seed=3)
        c = random_saliency(tiny_resnet, seed=4)
        name = next(iter(a))
        np.testing.assert_allclose(a[name], b[name])
        assert not np.allclose(a[name], c[name])


class TestComputeSaliencyDispatch:
    def test_all_criteria_listed(self):
        assert set(SALIENCY_CRITERIA) == {"class_aware", "magnitude", "gradient", "random"}

    def test_dispatch(self, tiny_resnet, tiny_loaders):
        train_loader, _ = tiny_loaders
        for criterion in SALIENCY_CRITERIA:
            saliency = compute_saliency(
                criterion, tiny_resnet, batches=iter(train_loader), max_batches=1
            )
            assert set(saliency) == set(prunable_layers(tiny_resnet))

    def test_class_aware_requires_batches(self, tiny_resnet):
        with pytest.raises(ValueError):
            compute_saliency("class_aware", tiny_resnet)

    def test_unknown_criterion(self, tiny_resnet):
        with pytest.raises(ValueError):
            compute_saliency("taylor2", tiny_resnet)
