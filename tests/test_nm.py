"""Tests for fine-grained N:M sparsity masks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsity.masks import check_nm_compliance, density
from repro.sparsity.nm import NMConfig, apply_nm, nm_mask, nm_theoretical_sparsity


class TestNMConfig:
    def test_properties(self):
        cfg = NMConfig(2, 4)
        assert cfg.sparsity == pytest.approx(0.5)
        assert cfg.density == pytest.approx(0.5)
        assert not cfg.is_dense
        assert str(cfg) == "2:4"

    def test_dense_pattern(self):
        assert NMConfig(4, 4).is_dense

    @pytest.mark.parametrize("n,m", [(0, 4), (5, 4), (-1, 4), (2, 0)])
    def test_invalid_raises(self, n, m):
        with pytest.raises(ValueError):
            NMConfig(n, m)

    def test_theoretical_sparsity(self):
        assert nm_theoretical_sparsity(1, 4) == pytest.approx(0.75)
        assert nm_theoretical_sparsity(3, 4) == pytest.approx(0.25)


class TestNMMask:
    def test_exact_density(self, rng):
        scores = rng.random((16, 8))
        mask = nm_mask(scores, 2, 4, axis=0)
        assert density(mask) == pytest.approx(0.5)
        assert check_nm_compliance(mask, 2, 4, axis=0)

    def test_keeps_largest_scores(self):
        scores = np.array([[4.0], [3.0], [2.0], [1.0]])
        mask = nm_mask(scores, 2, 4, axis=0)
        np.testing.assert_allclose(mask[:, 0], [1, 1, 0, 0])

    def test_1_4_and_3_4(self, rng):
        scores = rng.random((32, 4))
        assert density(nm_mask(scores, 1, 4)) == pytest.approx(0.25)
        assert density(nm_mask(scores, 3, 4)) == pytest.approx(0.75)

    def test_dense_pattern_returns_ones(self, rng):
        scores = rng.random((8, 8))
        np.testing.assert_allclose(nm_mask(scores, 4, 4), 1.0)

    def test_axis_1(self, rng):
        scores = rng.random((4, 16))
        mask = nm_mask(scores, 2, 4, axis=1)
        assert check_nm_compliance(mask, 2, 4, axis=1)
        assert density(mask) == pytest.approx(0.5)

    def test_partial_trailing_group(self, rng):
        scores = rng.random((6, 3))  # 6 rows, m=4 -> trailing group of 2
        mask = nm_mask(scores, 2, 4, axis=0)
        # Full group keeps 2 of 4; the trailing pair keeps ceil(2*2/4)=1.
        assert mask[:4].sum(axis=0) == pytest.approx(np.full(3, 2.0))
        assert mask[4:].sum(axis=0) == pytest.approx(np.full(3, 1.0))

    def test_non_2d_raises(self, rng):
        with pytest.raises(ValueError):
            nm_mask(rng.random(8), 2, 4)

    @given(
        st.integers(1, 4).flatmap(lambda n: st.tuples(st.just(n), st.integers(n, 8))),
        st.integers(1, 6),
        st.integers(1, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_compliance_and_density(self, nm_pair, groups, cols):
        n, m = nm_pair
        rng = np.random.default_rng(n * 100 + m * 10 + groups + cols)
        scores = rng.random((groups * m, cols))
        mask = nm_mask(scores, n, m, axis=0)
        assert check_nm_compliance(mask, n, m, axis=0)
        assert density(mask) == pytest.approx(n / m)

    def test_ties_still_keep_exactly_n(self):
        scores = np.ones((8, 4))
        mask = nm_mask(scores, 2, 4)
        np.testing.assert_allclose(mask.sum(axis=0), 4.0)  # 2 per group x 2 groups


class TestApplyNM:
    def test_prunes_smallest_magnitudes(self):
        weight = np.array([[0.1], [-5.0], [3.0], [0.2]])
        pruned, mask = apply_nm(weight, 2, 4)
        np.testing.assert_allclose(mask[:, 0], [0, 1, 1, 0])
        np.testing.assert_allclose(pruned[:, 0], [0, -5.0, 3.0, 0])

    def test_sign_preserved(self, rng):
        weight = rng.normal(size=(16, 4))
        pruned, mask = apply_nm(weight, 2, 4)
        nonzero = mask == 1
        np.testing.assert_allclose(pruned[nonzero], weight[nonzero])
