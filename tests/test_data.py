"""Tests for the synthetic dataset substrate and loaders."""

import numpy as np
import pytest

from repro.data import (
    DATASET_PRESETS,
    DataLoader,
    DatasetConfig,
    SyntheticImageDataset,
    build_user_loaders,
    make_dataset,
    sample_user_profile,
)


class TestDatasetConstruction:
    def test_presets_exist(self):
        assert {"synthetic-imagenet", "synthetic-cifar100", "synthetic-tiny"} <= set(DATASET_PRESETS)

    def test_make_dataset_with_overrides(self):
        ds = make_dataset("synthetic-tiny", num_classes=5, image_size=10)
        assert ds.num_classes == 5
        assert ds.image_size == 10

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            make_dataset("imagenet-22k")

    def test_template_shapes_and_determinism(self, tiny_dataset):
        t1 = tiny_dataset.class_template(0)
        t2 = tiny_dataset.class_template(0)
        assert t1.shape == (3, tiny_dataset.image_size, tiny_dataset.image_size)
        np.testing.assert_allclose(t1, t2)

    def test_templates_differ_between_classes(self, tiny_dataset):
        t0 = tiny_dataset.class_template(0)
        t1 = tiny_dataset.class_template(1)
        assert not np.allclose(t0, t1)

    def test_templates_differ_between_seeds(self):
        a = make_dataset("synthetic-tiny", seed=0).class_template(0)
        b = make_dataset("synthetic-tiny", seed=1).class_template(0)
        assert not np.allclose(a, b)

    def test_invalid_class_raises(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.class_template(tiny_dataset.num_classes)


class TestSplits:
    def test_split_shapes(self, tiny_dataset):
        x, y = tiny_dataset.split("train")
        cfg = tiny_dataset.config
        assert x.shape[0] == cfg.num_classes * cfg.samples_per_class_train
        assert x.shape[1:] == (3, cfg.image_size, cfg.image_size)
        assert y.shape == (x.shape[0],)

    def test_split_deterministic(self, tiny_dataset):
        x1, y1 = tiny_dataset.split("train")
        x2, y2 = tiny_dataset.split("train")
        np.testing.assert_allclose(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_train_val_differ(self, tiny_dataset):
        train_x, _ = tiny_dataset.split("train", samples_per_class=6)
        val_x, _ = tiny_dataset.split("val", samples_per_class=6)
        assert not np.allclose(train_x, val_x)

    def test_class_subset_with_remap(self, tiny_dataset):
        x, y = tiny_dataset.split("train", classes=[2, 5])
        assert set(np.unique(y)) == {0, 1}

    def test_class_subset_without_remap(self, tiny_dataset):
        _, y = tiny_dataset.split("train", classes=[2, 5], remap_labels=False)
        assert set(np.unique(y)) == {2, 5}

    def test_duplicate_classes_raise(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.split("train", classes=[1, 1])

    def test_invalid_split_raises(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.split("test")

    def test_classes_are_learnable(self, tiny_dataset):
        """A nearest-template classifier should beat chance comfortably."""
        x, y = tiny_dataset.split("val", classes=[0, 1, 2, 3])
        templates = np.stack([tiny_dataset.class_template(c) for c in [0, 1, 2, 3]])
        distances = ((x[:, None] - templates[None]) ** 2).sum(axis=(2, 3, 4))
        preds = distances.argmin(axis=1)
        assert (preds == y).mean() > 0.5

    def test_user_preferred_split(self, tiny_dataset):
        x, y, selected = tiny_dataset.user_preferred_split(3, split="val")
        assert len(selected) == 3
        assert set(np.unique(y)) <= {0, 1, 2}

    def test_user_preferred_split_invalid(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.user_preferred_split(0)


class TestDataLoader:
    def test_batch_shapes(self, rng):
        x = rng.normal(size=(25, 3, 4, 4))
        y = rng.integers(0, 3, size=25)
        loader = DataLoader(x, y, batch_size=10)
        batches = list(loader)
        assert len(batches) == 3
        assert batches[0][0].shape == (10, 3, 4, 4)
        assert batches[-1][0].shape == (5, 3, 4, 4)

    def test_drop_last(self, rng):
        x = rng.normal(size=(25, 2))
        y = rng.integers(0, 2, size=25)
        loader = DataLoader(x, y, batch_size=10, drop_last=True)
        assert len(loader) == 2
        assert len(list(loader)) == 2

    def test_no_shuffle_preserves_order(self, rng):
        x = np.arange(20).reshape(20, 1).astype(float)
        y = np.arange(20)
        loader = DataLoader(x, y, batch_size=5, shuffle=False)
        first_batch = next(iter(loader))
        np.testing.assert_array_equal(first_batch[1], [0, 1, 2, 3, 4])

    def test_shuffle_changes_across_epochs(self, rng):
        x = np.arange(40).reshape(40, 1).astype(float)
        y = np.arange(40)
        loader = DataLoader(x, y, batch_size=40, shuffle=True, seed=3)
        epoch1 = next(iter(loader))[1]
        epoch2 = next(iter(loader))[1]
        assert not np.array_equal(epoch1, epoch2)

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((3, 2)), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((0, 2)), np.zeros(0))

    def test_invalid_batch_size(self, rng):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((3, 2)), np.zeros(3), batch_size=0)


class TestUserProfiles:
    def test_sample_profile(self, tiny_dataset):
        profile = sample_user_profile(tiny_dataset, 3, user_id=1)
        assert profile.num_classes == 3
        assert len(set(profile.preferred_classes)) == 3
        assert all(0 <= c < tiny_dataset.num_classes for c in profile.preferred_classes)

    def test_sample_profile_deterministic(self, tiny_dataset):
        a = sample_user_profile(tiny_dataset, 4, seed=5)
        b = sample_user_profile(tiny_dataset, 4, seed=5)
        assert a.preferred_classes == b.preferred_classes

    def test_different_users_get_different_classes(self, tiny_dataset):
        a = sample_user_profile(tiny_dataset, 4, user_id=0)
        b = sample_user_profile(tiny_dataset, 4, user_id=1)
        assert a.preferred_classes != b.preferred_classes

    def test_invalid_count_raises(self, tiny_dataset):
        with pytest.raises(ValueError):
            sample_user_profile(tiny_dataset, 0)
        with pytest.raises(ValueError):
            sample_user_profile(tiny_dataset, tiny_dataset.num_classes + 1)

    def test_build_user_loaders(self, tiny_dataset):
        profile = sample_user_profile(tiny_dataset, 3, seed=2)
        train_loader, val_loader = build_user_loaders(tiny_dataset, profile, batch_size=8)
        x, y = next(iter(train_loader))
        assert x.shape[1:] == (3, tiny_dataset.image_size, tiny_dataset.image_size)
        assert set(np.unique(y)) <= {0, 1, 2}
        assert val_loader.num_samples == 3 * tiny_dataset.config.samples_per_class_val
