"""Tests for compression metrics (sparsity, FLOPs, storage)."""

import numpy as np
import pytest

from repro.nn.models.base import prunable_layers
from repro.pruning.metrics import (
    collect_model_stats,
    flops_ratio,
    layer_sparsities,
    model_sparsity,
    model_storage_bits,
)
from repro.sparsity.nm import nm_mask


def apply_nm_to_model(model, n, m):
    for layer in prunable_layers(model).values():
        scores = np.abs(layer.reshaped_weight())
        layer.set_reshaped_mask(nm_mask(scores, n, m, axis=0))


class TestModelSparsity:
    def test_dense_model_zero_sparsity(self, tiny_resnet):
        assert model_sparsity(tiny_resnet) == pytest.approx(0.0, abs=1e-6)

    def test_nm_pruned_model(self, tiny_resnet):
        apply_nm_to_model(tiny_resnet, 2, 4)
        assert model_sparsity(tiny_resnet) == pytest.approx(0.5, abs=0.02)

    def test_layer_sparsities_keys(self, tiny_resnet):
        apply_nm_to_model(tiny_resnet, 1, 4)
        per_layer = layer_sparsities(tiny_resnet)
        assert set(per_layer) == set(prunable_layers(tiny_resnet))
        for value in per_layer.values():
            assert value == pytest.approx(0.75, abs=0.05)


class TestModelStats:
    def test_dense_flops_positive_and_consistent(self, tiny_resnet):
        stats = collect_model_stats(tiny_resnet)
        assert stats.dense_flops > 0
        assert stats.sparse_flops == stats.dense_flops
        assert stats.flops_ratio == pytest.approx(1.0)
        assert stats.total_weights == sum(l.total_weights for l in stats.layers)

    def test_conv_flops_scale_with_spatial_size(self):
        from repro.nn.models import vgg_tiny

        small = collect_model_stats(vgg_tiny(num_classes=4, input_size=8, seed=0), input_size=8)
        large = collect_model_stats(vgg_tiny(num_classes=4, input_size=16, seed=0), input_size=16)
        assert large.dense_flops > small.dense_flops * 2

    def test_flops_ratio_tracks_sparsity(self, tiny_vgg):
        dense_ratio = flops_ratio(tiny_vgg)
        apply_nm_to_model(tiny_vgg, 2, 4)
        pruned_ratio = flops_ratio(tiny_vgg)
        assert dense_ratio == pytest.approx(1.0)
        assert pruned_ratio == pytest.approx(0.5, abs=0.05)

    def test_per_layer_records(self, tiny_vgg):
        apply_nm_to_model(tiny_vgg, 2, 4)
        stats = collect_model_stats(tiny_vgg)
        by_name = stats.by_name()
        assert set(by_name) == set(prunable_layers(tiny_vgg))
        for layer_stats in stats.layers:
            assert 0.0 <= layer_stats.sparsity <= 1.0
            assert layer_stats.sparse_flops <= layer_stats.dense_flops


class TestModelStorageBits:
    def test_block_pruning_shrinks_storage(self, tiny_resnet):
        from repro.sparsity.hybrid import HybridSparsityConfig, hybrid_mask

        dense_bits = model_storage_bits(tiny_resnet, block_size=8)
        # The CRISP format always budgets N values per group, so the encoded
        # size is already below dense storage even before pruning.
        assert dense_bits["total_bits"] < dense_bits["dense_bits"]

        cfg = HybridSparsityConfig(2, 4, 8)
        for layer in prunable_layers(tiny_resnet).values():
            scores = np.abs(layer.reshaped_weight())
            grid_cols = -(-scores.shape[1] // 8)
            keep = max(1, grid_cols // 2)
            mask, _ = hybrid_mask(scores, cfg, keep_blocks_per_row=keep)
            layer.set_reshaped_mask(mask)
        pruned_bits = model_storage_bits(tiny_resnet, block_size=8)
        assert pruned_bits["total_bits"] < dense_bits["total_bits"]
        assert pruned_bits["dense_bits"] == dense_bits["dense_bits"]
        assert pruned_bits["metadata_bits"] > 0

    def test_keys(self, tiny_resnet):
        result = model_storage_bits(tiny_resnet, block_size=8)
        assert set(result) == {"data_bits", "metadata_bits", "total_bits", "dense_bits"}
        assert result["total_bits"] == result["data_bits"] + result["metadata_bits"]
