"""Tests for the analytical accelerator models (dense, NVIDIA-STC, DSTC, CRISP-STC)."""

import pytest

from repro.hw import (
    AcceleratorSpec,
    CrispSTC,
    DenseAccelerator,
    DualSideSTC,
    EnergyModel,
    NvidiaSTC,
    resnet50_reference_layers,
)
from repro.hw.workload import LayerWorkload


def mid_layer(n=2, m=4, keep=0.4):
    return resnet50_reference_layers(n=n, m=m, block_keep_ratio=keep)[5]


class TestEnergyModel:
    def test_breakdown_totals(self):
        from repro.hw.energy import EnergyBreakdown

        a = EnergyBreakdown(mac_pj=1.0, dram_pj=2.0)
        b = EnergyBreakdown(smem_pj=3.0)
        total = a + b
        assert total.total_pj == pytest.approx(6.0)
        assert total.total_uj == pytest.approx(6.0e-6)
        assert set(total.as_dict()) >= {"mac_pj", "dram_pj", "total_pj"}

    def test_scaled(self):
        model = EnergyModel()
        half = model.scaled(0.5)
        assert half.mac_pj == pytest.approx(model.mac_pj * 0.5)
        assert half.dram_access_pj == pytest.approx(model.dram_access_pj * 0.5)


class TestAcceleratorSpec:
    def test_defaults(self):
        spec = AcceleratorSpec()
        assert spec.num_macs == 256
        assert spec.smem_kb == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorSpec(num_macs=0)
        with pytest.raises(ValueError):
            AcceleratorSpec(dram_bandwidth_bytes_per_cycle=0)


class TestDenseAccelerator:
    def test_estimate_fields(self):
        perf = DenseAccelerator().estimate(mid_layer())
        assert perf.cycles > 0
        assert perf.energy_uj > 0
        assert perf.bound in ("compute", "smem", "dram")
        assert perf.effective_macs == pytest.approx(mid_layer().dense_macs)

    def test_compute_bound_on_conv_layers(self):
        perf = DenseAccelerator().estimate(mid_layer())
        assert perf.bound == "compute"

    def test_latency_us(self):
        perf = DenseAccelerator().estimate(mid_layer())
        assert perf.latency_us(500.0) == pytest.approx(perf.cycles / 500.0)

    def test_network_totals(self):
        acc = DenseAccelerator()
        layers = resnet50_reference_layers()
        assert acc.total_cycles(layers) == pytest.approx(
            sum(p.cycles for p in acc.estimate_network(layers))
        )


class TestNvidiaSTC:
    def test_speedup_capped_at_two(self):
        dense = DenseAccelerator()
        stc = NvidiaSTC()
        for n in (1, 2):
            wl = mid_layer(n=n, m=4, keep=0.4)
            speedup = dense.estimate(wl).cycles / stc.estimate(wl).cycles
            assert speedup <= 2.0 + 1e-9
            assert speedup > 1.2

    def test_three_four_falls_back_to_dense_compute(self):
        wl = mid_layer(n=3, m=4, keep=0.27)
        perf = NvidiaSTC().estimate(wl)
        assert perf.effective_macs == pytest.approx(wl.dense_macs)

    def test_block_sparsity_not_exploited(self):
        """NVIDIA-STC latency must not improve when only the block keep ratio drops."""
        stc = NvidiaSTC()
        aggressive = stc.estimate(mid_layer(n=2, m=4, keep=0.2)).cycles
        mild = stc.estimate(mid_layer(n=2, m=4, keep=0.8)).cycles
        assert aggressive == pytest.approx(mild, rel=1e-6)


class TestDualSideSTC:
    def test_early_layer_beats_late_layer(self):
        dense = DenseAccelerator()
        dstc = DualSideSTC()
        layers = resnet50_reference_layers(n=2, m=4, block_keep_ratio=0.4)
        early, late = layers[1], layers[-1]
        early_speedup = dense.estimate(early).cycles / dstc.estimate(early).cycles
        late_speedup = dense.estimate(late).cycles / dstc.estimate(late).cycles
        assert early_speedup > late_speedup
        assert early_speedup > 3.0
        assert late_speedup < 4.0

    def test_compute_reduction_capped(self):
        wl = mid_layer(n=1, m=4, keep=0.1)  # extreme sparsity
        perf = DualSideSTC().estimate(wl)
        assert perf.effective_macs >= wl.dense_macs / DualSideSTC.max_compute_reduction - 1e-6

    def test_benefits_from_activation_sparsity(self):
        dstc = DualSideSTC()
        dense_act = mid_layer().with_sparsity(activation_density=0.99)
        sparse_act = mid_layer().with_sparsity(activation_density=0.4)
        assert dstc.estimate(sparse_act).cycles <= dstc.estimate(dense_act).cycles + 1e-9


class TestCrispSTC:
    def test_block_size_in_name(self):
        assert CrispSTC(block_size=32).name == "crisp-stc-b32"

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            CrispSTC(block_size=0)

    def test_speedup_exceeds_nvidia(self):
        dense = DenseAccelerator()
        wl = mid_layer(n=2, m=4, keep=0.2)  # 90 % sparsity
        crisp_speedup = dense.estimate(wl).cycles / CrispSTC(64).estimate(wl).cycles
        nvidia_speedup = dense.estimate(wl).cycles / NvidiaSTC().estimate(wl).cycles
        assert crisp_speedup > nvidia_speedup
        assert crisp_speedup > 4.0

    def test_larger_blocks_are_faster(self):
        wl = mid_layer(n=2, m=4, keep=0.25)
        cycles = {b: CrispSTC(b).estimate(wl).cycles for b in (16, 32, 64)}
        assert cycles[64] <= cycles[32] <= cycles[16]

    def test_speedup_ordering_across_nm_patterns(self):
        """At a fixed block keep ratio the 1:4 pattern is the fastest, 3:4 the
        slowest (Fig. 8 ordering)."""
        dense = DenseAccelerator()
        crisp = CrispSTC(64)
        speedups = {}
        for n in (1, 2, 3):
            wl = mid_layer(n=n, m=4, keep=0.4)
            speedups[n] = dense.estimate(wl).cycles / crisp.estimate(wl).cycles
        assert speedups[1] > speedups[2] > speedups[3]

    def test_speedup_grows_with_sparsity(self):
        dense = DenseAccelerator()
        crisp = CrispSTC(64)
        speedups = []
        for keep in (0.8, 0.4, 0.2):
            wl = mid_layer(n=2, m=4, keep=keep)
            speedups.append(dense.estimate(wl).cycles / crisp.estimate(wl).cycles)
        assert speedups[0] < speedups[1] < speedups[2]

    def test_energy_efficiency_better_than_dense(self):
        dense = DenseAccelerator()
        crisp = CrispSTC(64)
        wl = mid_layer(n=2, m=4, keep=0.2)
        ratio = dense.estimate(wl).energy_uj / crisp.estimate(wl).energy_uj
        assert ratio > 3.0

    def test_fmap_streaming_mode(self):
        """With fmap_resident=False everyone pays feature-map DRAM traffic and
        the CRISP advantage shrinks but persists."""
        spec = AcceleratorSpec(fmap_resident=False)
        dense = DenseAccelerator(spec=spec)
        crisp = CrispSTC(64, spec=spec)
        wl = mid_layer(n=2, m=4, keep=0.2)
        speedup = dense.estimate(wl).cycles / crisp.estimate(wl).cycles
        resident_speedup = (
            DenseAccelerator().estimate(wl).cycles / CrispSTC(64).estimate(wl).cycles
        )
        assert 1.0 < speedup <= resident_speedup + 1e-9
