"""Tests for process shard workers (:mod:`repro.cluster.procworker`).

The contract under test is the tentpole one: ``workers="process"`` must be
a drop-in for the threaded shards — same API, same telemetry schema, same
chaos seams, *bit-identical predictions* — while weights cross the process
boundary only as zero-copy shared-memory segments that are all unlinked by
shutdown (graceful or not).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterService,
    ProcessShardWorker,
    ShardKilledError,
    ShardOverloadError,
)
from repro.cluster.telemetry import assert_stats_schema
from repro.errors import ApiError, InvalidArgumentError, UnavailableError
from repro.serve import PersonalizationService, ServiceConfig
from repro.shm import SharedWeightStore

from test_cluster import _fleet, _stream


def _leaked(store):
    """Names from the store's bookkeeping that still exist in /dev/shm."""
    return [
        name
        for name in store.segment_names(live_only=False)
        if os.path.exists(f"/dev/shm/{name}")
    ]


def _process_cluster(registry, shards=2, **overrides):
    overrides.setdefault("cache_capacity", 4)
    return ClusterService(
        ClusterConfig(shards=shards, workers="process", **overrides), registry=registry
    )


class TestWorkerKindValidation:
    def test_unknown_worker_kind_is_invalid_argument(self):
        with pytest.raises(InvalidArgumentError) as excinfo:
            ClusterConfig(workers="greenlet")
        assert excinfo.value.code == "INVALID_ARGUMENT"
        assert isinstance(excinfo.value, ApiError)
        assert isinstance(excinfo.value, ValueError)  # old except clauses still catch


class TestProcessClusterParity:
    def test_predictions_bit_exact_across_all_three_deployments(self):
        """The acceptance criterion: single, threaded and process serve the
        same bits for the same stream."""
        registry, model_ids = _fleet(tenants=4)
        requests = _stream(model_ids, requests=24)
        single = PersonalizationService(ServiceConfig(cache_capacity=4), registry=registry)
        expected = single.predict_batch(requests)

        with ClusterService(
            ClusterConfig(shards=2, cache_capacity=4), registry=registry
        ) as threaded_cluster:
            threaded = threaded_cluster.predict_batch(requests, timeout=60)

        cluster = _process_cluster(registry)
        store = cluster._store
        with cluster:
            process = cluster.predict_batch(requests, timeout=60)
            stats = cluster.stats()

        for a, b, c in zip(expected, threaded, process):
            np.testing.assert_array_equal(a.logits, c.logits)
            np.testing.assert_array_equal(b.logits, c.logits)
            np.testing.assert_array_equal(a.classes, c.classes)
        assert stats["totals"]["completed"] == len(requests)
        assert not _leaked(store)

    def test_burst_fuses_as_one_window_per_shard(self):
        """Window bracketing makes whole-window fusion structural: a 12-
        request burst over one shard dispatches as a single batch no matter
        how the host schedules parent and child."""
        registry, model_ids = _fleet(tenants=2)
        requests = _stream(model_ids, requests=12)
        with _process_cluster(registry, shards=1) as cluster:
            responses = cluster.predict_batch(requests, timeout=60)
            histogram = cluster.stats()["per_shard"][0]["telemetry"]["batch_size"]["histogram"]
        assert all(r.status == 200 for r in responses)
        assert histogram == {"12": 1}

    def test_stats_satisfy_the_unified_serving_schema(self):
        registry, model_ids = _fleet(tenants=2)
        with _process_cluster(registry) as cluster:
            cluster.predict_batch(_stream(model_ids, requests=8), timeout=60)
            stats = cluster.stats()
        assert_stats_schema(stats)
        assert stats["workers"] == "process"

    def test_engine_accessor_serves_the_shared_bytes(self, rng):
        registry, model_ids = _fleet(tenants=2)
        batch = rng.normal(size=(2, 3, 12, 12))
        with _process_cluster(registry) as cluster:
            engine = cluster.engine(model_ids[0])
            np.testing.assert_array_equal(
                engine.predict(batch),
                registry.build_engine(model_ids[0]).predict(batch),
            )

    def test_personalize_republishes_and_evicts(self, rng):
        from test_cluster import _sparsified_model

        registry, model_ids = _fleet(tenants=2)
        batch = rng.normal(size=(1, 3, 12, 12))
        with _process_cluster(registry) as cluster:
            before = cluster.predict(model_ids[0], batch, timeout=60)
            # Re-register the tenant with different weights (the
            # re-personalization path) through the cluster seam.
            cluster.service.personalize = lambda request, **kw: registry.register(
                _sparsified_model(seed=77),
                spec=registry.get(model_ids[0]).spec,
                model_id=model_ids[0],
            )
            assert cluster.personalize(None) == model_ids[0]
            after = cluster.predict(model_ids[0], batch, timeout=60)
            oracle = registry.build_engine(model_ids[0]).predict(batch)
        assert not np.array_equal(before.logits, after.logits)
        np.testing.assert_array_equal(after.logits, oracle)


class TestShmLifecycle:
    def test_segments_unlinked_after_graceful_shutdown(self):
        registry, model_ids = _fleet(tenants=3)
        cluster = _process_cluster(registry)
        store = cluster._store
        cluster.predict_batch(_stream(model_ids, requests=6), timeout=60)
        live = store.segment_names()
        assert live and all(os.path.exists(f"/dev/shm/{n}") for n in live)
        cluster.shutdown()
        assert store.refs == 0
        assert store.segment_names(live_only=True) == []
        assert not _leaked(store)

    def test_segments_unlinked_after_abrupt_kill(self):
        registry, model_ids = _fleet(tenants=2)
        cluster = _process_cluster(registry)
        store = cluster._store
        cluster.predict_batch(_stream(model_ids, requests=4), timeout=60)
        for shard_id in list(cluster.shard_ids()):
            cluster.kill_shard(shard_id)
        cluster.shutdown()
        assert store.refs == 0
        assert not _leaked(store)


class TestChaosSeams:
    def test_sigkill_fails_inflight_futures_without_hanging(self):
        registry, model_ids = _fleet(tenants=2)
        with _process_cluster(registry, shards=1) as cluster:
            worker = cluster.worker(cluster.shard_ids()[0])
            worker.chaos_delay_s = 0.5  # guarantee work is in flight
            futures = [cluster.submit(r) for r in _stream(model_ids, requests=6)]
            cluster.kill_shard(worker.shard_id)
            for future in futures:
                with pytest.raises((ShardKilledError, UnavailableError)):
                    response = future.result(timeout=10)
                    raise AssertionError(f"future resolved: {response!r}")
            assert not worker.is_alive()
            # Late traffic fails fast with the same surface, never hangs.
            with pytest.raises((ShardKilledError, UnavailableError)):
                cluster.submit(_stream(model_ids, requests=1)[0]).result(timeout=10)

    def test_heal_after_kill_is_bit_exact(self):
        registry, model_ids = _fleet(tenants=4)
        requests = _stream(model_ids, requests=12)
        single = PersonalizationService(ServiceConfig(cache_capacity=4), registry=registry)
        expected = single.predict_batch(requests)
        with _process_cluster(registry, shards=3) as cluster:
            victim = cluster.shard_ids()[0]
            cluster.kill_shard(victim)
            cluster.remove_shard(victim)  # heal: reroute tenants to survivors
            replay = cluster.predict_batch(requests, timeout=60)
            for a, b in zip(expected, replay):
                np.testing.assert_array_equal(a.logits, b.logits)

    def test_poisoned_cache_entry_fails_batch_and_heals(self, rng):
        from repro.loadgen.faults import FaultInjector

        registry, model_ids = _fleet(tenants=2)
        batch = rng.normal(size=(1, 3, 12, 12))
        single = PersonalizationService(ServiceConfig(cache_capacity=4), registry=registry)
        with _process_cluster(registry) as cluster:
            injector = FaultInjector(cluster)
            injector.poison_cache(model_ids[0])
            with pytest.raises(ApiError):
                response = cluster.predict(model_ids[0], batch, timeout=60)
                if not response.ok:  # pragma: no cover - defensive
                    raise UnavailableError(response.reason)
            injector.heal_cache(model_ids[0])
            healed = cluster.predict(model_ids[0], batch, timeout=60)
            np.testing.assert_array_equal(
                healed.logits, single.predict(model_ids[0], batch).logits
            )

    def test_chaos_delay_slows_dispatch(self):
        registry, model_ids = _fleet(tenants=1)
        with _process_cluster(registry, shards=1) as cluster:
            worker = cluster.worker(cluster.shard_ids()[0])
            worker.chaos_delay_s = 0.2
            assert worker.chaos_delay_s == 0.2
            response = cluster.predict_batch(_stream(model_ids, requests=1), timeout=60)[0]
            assert response.status == 200
            latency = cluster.stats()["totals"]["latency"]
            assert latency["max_ms"] >= 200.0


class TestProcessShardWorkerDirect:
    def test_admission_control_under_held_window(self):
        """Window bracketing makes the overload check deterministic: held
        predicts stay pending until the window closes."""
        registry, model_ids = _fleet(tenants=1)
        store = SharedWeightStore(registry)
        worker = ProcessShardWorker(0, store, max_pending=2)
        try:
            worker.start()
            worker.begin_window()
            requests = _stream(model_ids, requests=3)
            futures = [worker.submit(requests[0]), worker.submit(requests[1])]
            with pytest.raises(ShardOverloadError):
                worker.submit(requests[2])
            assert worker.telemetry.snapshot()["rejected"] == 1
            worker.end_window()
            assert all(f.result(timeout=30).status == 200 for f in futures)
        finally:
            worker.stop()
            store.close()
        assert store.refs == 0

    def test_never_started_worker_fails_fast_and_stops_clean(self):
        registry, model_ids = _fleet(tenants=1)
        store = SharedWeightStore(registry)
        worker = ProcessShardWorker(0, store)
        with pytest.raises(UnavailableError):
            worker.submit(_stream(model_ids, requests=1)[0])
        worker.stop()  # no-op: never acquired a store ref
        worker.kill()
        assert store.refs == 0
        store.close()

    def test_submit_after_stop_raises(self):
        registry, model_ids = _fleet(tenants=1)
        store = SharedWeightStore(registry)
        worker = ProcessShardWorker(0, store)
        worker.start()
        worker.stop()
        with pytest.raises(UnavailableError):
            worker.submit(_stream(model_ids, requests=1)[0])
        store.close()

    def test_drain_waits_for_queued_work(self):
        registry, model_ids = _fleet(tenants=2)
        store = SharedWeightStore(registry)
        worker = ProcessShardWorker(0, store)
        try:
            worker.start()
            futures = [worker.submit(r) for r in _stream(model_ids, requests=6)]
            worker.drain()
            # FIFO drain proof: every future is already resolved.
            assert all(f.done() for f in futures)
            assert all(f.result(timeout=0).status == 200 for f in futures)
        finally:
            worker.stop()
            store.close()
