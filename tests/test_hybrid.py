"""Tests for the hybrid (N:M + uniform block) sparsity pattern."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsity.hybrid import (
    HybridSparsityConfig,
    hybrid_average_sparsity,
    hybrid_mask,
    keep_blocks_for_target_sparsity,
)
from repro.sparsity.masks import check_block_uniformity, check_nm_compliance, density


class TestHybridConfig:
    def test_valid(self):
        cfg = HybridSparsityConfig(2, 4, 16)
        assert cfg.nm.sparsity == pytest.approx(0.5)
        assert str(cfg) == "2:4+B16"

    def test_invalid_nm(self):
        with pytest.raises(ValueError):
            HybridSparsityConfig(5, 4, 16)

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            HybridSparsityConfig(2, 4, 0)

    def test_average_sparsity_method(self):
        cfg = HybridSparsityConfig(2, 4, 16)
        assert cfg.average_sparsity(0.5) == pytest.approx(0.75)


class TestAverageSparsityFormula:
    """The paper's formula: sparsity = 1 - (K'/K) * (N/M)."""

    @pytest.mark.parametrize(
        "n,m,keep,expected",
        [
            (2, 4, 1.0, 0.5),
            (2, 4, 0.5, 0.75),
            (1, 4, 0.4, 0.9),
            (3, 4, 0.2, 0.85),
            (4, 4, 0.25, 0.75),
        ],
    )
    def test_values(self, n, m, keep, expected):
        assert hybrid_average_sparsity(n, m, keep) == pytest.approx(expected)

    def test_invalid_keep_ratio(self):
        with pytest.raises(ValueError):
            hybrid_average_sparsity(2, 4, 1.5)

    @given(
        st.integers(1, 4).flatmap(lambda n: st.tuples(st.just(n), st.integers(n, 8))),
        st.floats(0.01, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_bounds(self, nm_pair, keep):
        n, m = nm_pair
        value = hybrid_average_sparsity(n, m, keep)
        assert 0.0 <= value < 1.0
        # Hybrid sparsity is never below the N:M floor.
        assert value >= 1.0 - n / m - 1e-12


class TestKeepBlocksForTarget:
    def test_basic(self):
        # target 0.75 with 2:4 -> keep ratio 0.5 -> 4 of 8 blocks.
        assert keep_blocks_for_target_sparsity(0.75, 2, 4, 8) == 4

    def test_target_below_nm_floor_keeps_all(self):
        assert keep_blocks_for_target_sparsity(0.25, 2, 4, 8) == 8

    def test_never_below_one(self):
        assert keep_blocks_for_target_sparsity(0.99, 2, 4, 8) == 1

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            keep_blocks_for_target_sparsity(1.0, 2, 4, 8)

    @given(
        st.floats(0.0, 0.99),
        st.integers(1, 4).flatmap(lambda n: st.tuples(st.just(n), st.integers(n, 4))),
        st.integers(1, 32),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_achieves_at_least_target(self, target, nm_pair, block_cols):
        n, m = nm_pair
        k = keep_blocks_for_target_sparsity(target, n, m, block_cols)
        assert 1 <= k <= block_cols
        achieved = hybrid_average_sparsity(n, m, k / block_cols)
        # Either the target is met, or we already keep the minimum one block.
        assert achieved >= target - 1e-9 or k == 1 or achieved >= 1 - n / m - 1e-9


class TestHybridMask:
    def test_structure_invariants(self, rng):
        scores = rng.random((32, 32))
        cfg = HybridSparsityConfig(2, 4, 8)
        mask, info = hybrid_mask(scores, cfg, target_sparsity=0.75)
        assert check_nm_compliance(mask, 2, 4, axis=0)
        assert check_block_uniformity(mask, 8)
        assert info.nm_compliant and info.uniform_rows
        assert info.achieved_sparsity == pytest.approx(0.75, abs=0.02)

    def test_explicit_keep_blocks(self, rng):
        scores = rng.random((16, 32))
        cfg = HybridSparsityConfig(2, 4, 8)
        mask, info = hybrid_mask(scores, cfg, keep_blocks_per_row=2)
        assert info.keep_blocks_per_row == 2
        assert info.block_keep_ratio == pytest.approx(0.5)
        assert density(mask) == pytest.approx(0.25)

    def test_requires_exactly_one_target(self, rng):
        scores = rng.random((16, 16))
        cfg = HybridSparsityConfig(2, 4, 8)
        with pytest.raises(ValueError):
            hybrid_mask(scores, cfg)
        with pytest.raises(ValueError):
            hybrid_mask(scores, cfg, target_sparsity=0.8, keep_blocks_per_row=1)

    def test_keeps_salient_blocks(self, rng):
        scores = rng.random((16, 16)) * 0.01
        scores[:, :8] += 10.0  # first block-column clearly most important
        cfg = HybridSparsityConfig(2, 4, 8)
        mask, _ = hybrid_mask(scores, cfg, keep_blocks_per_row=1)
        assert mask[:, :8].sum() > 0
        assert mask[:, 8:].sum() == 0

    def test_non_2d_raises(self, rng):
        with pytest.raises(ValueError):
            hybrid_mask(rng.random(16), HybridSparsityConfig(2, 4, 4), target_sparsity=0.8)

    @given(
        st.integers(1, 3).flatmap(lambda n: st.tuples(st.just(n), st.just(4))),
        st.sampled_from([4, 8]),
        st.integers(1, 4),
        st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_invariants(self, nm_pair, block_size, block_rows, block_cols):
        n, m = nm_pair
        rng = np.random.default_rng(n + block_size + block_rows * 10 + block_cols)
        scores = rng.random((block_rows * block_size, block_cols * block_size))
        cfg = HybridSparsityConfig(n, m, block_size)
        keep = int(rng.integers(1, block_cols + 1))
        mask, info = hybrid_mask(scores, cfg, keep_blocks_per_row=keep)
        assert check_nm_compliance(mask, n, m, axis=0)
        assert check_block_uniformity(mask, block_size)
        expected = hybrid_average_sparsity(n, m, keep / block_cols)
        assert info.achieved_sparsity == pytest.approx(expected, abs=1e-9)
