"""Unit tests for the numerical kernels in repro.nn.functional."""

import numpy as np
import pytest

from repro.nn import functional as F


def naive_conv2d(x, weight, bias, stride, padding):
    """Direct nested-loop convolution used as the reference implementation."""
    n, c_in, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    x_p = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, c_out, out_h, out_w))
    for b in range(n):
        for oc in range(c_out):
            for i in range(out_h):
                for j in range(out_w):
                    patch = x_p[b, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[b, oc, i, j] = np.sum(patch * weight[oc])
            if bias is not None:
                out[b, oc] += bias[oc]
    return out


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(8, 3, 1, 1) == 8
        assert F.conv_output_size(8, 3, 2, 1) == 4
        assert F.conv_output_size(7, 7, 1, 0) == 1

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = F.im2col(x, 3, 3, stride=1, padding=1)
        assert cols.shape == (2 * 8 * 8, 3 * 3 * 3)

    def test_identity_kernel1(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        cols = F.im2col(x, 1, 1)
        expected = x.transpose(0, 2, 3, 1).reshape(-1, 2)
        np.testing.assert_allclose(cols, expected)

    def test_col2im_adjoint(self, rng):
        """col2im must be the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.normal(size=(1, 2, 6, 6))
        cols = F.im2col(x, 3, 3, stride=2, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = np.sum(cols * y)
        rhs = np.sum(x * F.col2im(y, x.shape, 3, 3, stride=2, padding=1))
        assert lhs == pytest.approx(rhs)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_matches_naive(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 7, 7))
        weight = rng.normal(size=(4, 3, 3, 3))
        bias = rng.normal(size=4)
        out, _ = F.conv2d_forward(x, weight, bias, stride, padding)
        expected = naive_conv2d(x, weight, bias, stride, padding)
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_channel_mismatch_raises(self, rng):
        x = rng.normal(size=(1, 3, 5, 5))
        weight = rng.normal(size=(2, 4, 3, 3))
        with pytest.raises(ValueError):
            F.conv2d_forward(x, weight, None, 1, 1)

    def test_backward_weight_grad(self, rng, gradcheck):
        x = rng.normal(size=(2, 2, 5, 5))
        weight = rng.normal(size=(3, 2, 3, 3))
        bias = rng.normal(size=3)
        grad_out = rng.normal(size=(2, 3, 5, 5))

        out, cache = F.conv2d_forward(x, weight, bias, 1, 1)
        _, grad_w, grad_b = F.conv2d_backward(grad_out, weight, cache)

        def loss():
            y, _ = F.conv2d_forward(x, weight, bias, 1, 1)
            return float(np.sum(y * grad_out))

        num_grad_w = gradcheck(loss, weight)
        np.testing.assert_allclose(grad_w, num_grad_w, atol=1e-4)
        num_grad_b = gradcheck(loss, bias)
        np.testing.assert_allclose(grad_b, num_grad_b, atol=1e-4)

    def test_backward_input_grad(self, rng, gradcheck):
        x = rng.normal(size=(1, 2, 4, 4))
        weight = rng.normal(size=(2, 2, 3, 3))
        grad_out = rng.normal(size=(1, 2, 4, 4))
        out, cache = F.conv2d_forward(x, weight, None, 1, 1)
        grad_x, _, _ = F.conv2d_backward(grad_out, weight, cache)

        def loss():
            y, _ = F.conv2d_forward(x, weight, None, 1, 1)
            return float(np.sum(y * grad_out))

        num_grad_x = gradcheck(loss, x)
        np.testing.assert_allclose(grad_x, num_grad_x, atol=1e-4)


class TestDepthwiseConv:
    def test_matches_grouped_naive(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        weight = rng.normal(size=(3, 1, 3, 3))
        out, _ = F.depthwise_conv2d_forward(x, weight, None, 1, 1)
        # Reference: per-channel regular conv.
        for c in range(3):
            ref = naive_conv2d(x[:, c : c + 1], weight[c : c + 1], None, 1, 1)
            np.testing.assert_allclose(out[:, c : c + 1], ref, atol=1e-10)

    def test_backward_grads(self, rng, gradcheck):
        x = rng.normal(size=(1, 2, 5, 5))
        weight = rng.normal(size=(2, 1, 3, 3))
        grad_out = rng.normal(size=(1, 2, 5, 5))
        out, cache = F.depthwise_conv2d_forward(x, weight, None, 1, 1)
        grad_x, grad_w, _ = F.depthwise_conv2d_backward(grad_out, weight, cache)

        def loss():
            y, _ = F.depthwise_conv2d_forward(x, weight, None, 1, 1)
            return float(np.sum(y * grad_out))

        np.testing.assert_allclose(grad_w, gradcheck(loss, weight), atol=1e-4)
        np.testing.assert_allclose(grad_x, gradcheck(loss, x), atol=1e-4)

    def test_bad_shape_raises(self, rng):
        x = rng.normal(size=(1, 3, 5, 5))
        weight = rng.normal(size=(4, 1, 3, 3))
        with pytest.raises(ValueError):
            F.depthwise_conv2d_forward(x, weight, None, 1, 1)


class TestLinear:
    def test_forward(self, rng):
        x = rng.normal(size=(4, 6))
        w = rng.normal(size=(3, 6))
        b = rng.normal(size=3)
        out, _ = F.linear_forward(x, w, b)
        np.testing.assert_allclose(out, x @ w.T + b)

    def test_backward(self, rng, gradcheck):
        x = rng.normal(size=(4, 6))
        w = rng.normal(size=(3, 6))
        b = rng.normal(size=3)
        grad_out = rng.normal(size=(4, 3))
        out, cache = F.linear_forward(x, w, b)
        grad_x, grad_w, grad_b = F.linear_backward(grad_out, w, cache)

        def loss():
            y, _ = F.linear_forward(x, w, b)
            return float(np.sum(y * grad_out))

        np.testing.assert_allclose(grad_w, gradcheck(loss, w), atol=1e-5)
        np.testing.assert_allclose(grad_b, gradcheck(loss, b), atol=1e-5)
        np.testing.assert_allclose(grad_x, gradcheck(loss, x), atol=1e-5)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, _ = F.max_pool2d_forward(x, 2)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, cache = F.max_pool2d_forward(x, 2)
        grad = F.max_pool2d_backward(np.ones_like(out), cache)
        expected = np.zeros((1, 1, 4, 4))
        expected[0, 0, 1, 1] = expected[0, 0, 1, 3] = 1
        expected[0, 0, 3, 1] = expected[0, 0, 3, 3] = 1
        np.testing.assert_allclose(grad, expected)

    def test_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out, cache = F.avg_pool2d_forward(x, 2)
        np.testing.assert_allclose(out[0, 0, 0, 0], x[0, 0, :2, :2].mean())
        grad = F.avg_pool2d_backward(np.ones_like(out), cache)
        np.testing.assert_allclose(grad, np.full_like(x, 0.25))

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 5, 3, 3))
        out, cache = F.global_avg_pool_forward(x)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)))
        grad = F.global_avg_pool_backward(np.ones_like(out), cache)
        np.testing.assert_allclose(grad, np.full_like(x, 1.0 / 9))


class TestBatchNorm:
    def test_training_normalises(self, rng):
        x = rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5))
        gamma, beta = np.ones(4), np.zeros(4)
        mean, var = np.zeros(4), np.ones(4)
        out, _ = F.batchnorm_forward(x, gamma, beta, mean, var, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_updated(self, rng):
        x = rng.normal(loc=2.0, size=(16, 3, 4, 4))
        mean, var = np.zeros(3), np.ones(3)
        F.batchnorm_forward(x, np.ones(3), np.zeros(3), mean, var, training=True, momentum=1.0)
        np.testing.assert_allclose(mean, x.mean(axis=(0, 2, 3)))

    def test_eval_uses_running_stats(self, rng):
        x = rng.normal(size=(4, 3, 2, 2))
        mean = np.full(3, 5.0)
        var = np.full(3, 4.0)
        out, _ = F.batchnorm_forward(x, np.ones(3), np.zeros(3), mean, var, training=False)
        np.testing.assert_allclose(out, (x - 5.0) / np.sqrt(4.0 + 1e-5), rtol=1e-6)

    def test_backward_gradcheck(self, rng, gradcheck):
        x = rng.normal(size=(4, 2, 3, 3))
        gamma = rng.normal(size=2)
        beta = rng.normal(size=2)
        grad_out = rng.normal(size=x.shape)
        mean, var = np.zeros(2), np.ones(2)
        out, cache = F.batchnorm_forward(x, gamma, beta, mean, var, training=True)
        grad_x, grad_gamma, grad_beta = F.batchnorm_backward(grad_out, cache)

        def loss():
            m, v = np.zeros(2), np.ones(2)
            y, _ = F.batchnorm_forward(x, gamma, beta, m, v, training=True)
            return float(np.sum(y * grad_out))

        np.testing.assert_allclose(grad_gamma, gradcheck(loss, gamma), atol=1e-4)
        np.testing.assert_allclose(grad_beta, gradcheck(loss, beta), atol=1e-4)
        np.testing.assert_allclose(grad_x, gradcheck(loss, x), atol=1e-4)


class TestActivations:
    def test_relu(self):
        x = np.array([[-1.0, 0.0, 2.0]])
        out, cache = F.relu_forward(x)
        np.testing.assert_allclose(out, [[0, 0, 2]])
        grad = F.relu_backward(np.ones_like(x), cache)
        np.testing.assert_allclose(grad, [[0, 0, 1]])

    def test_relu6(self):
        x = np.array([[-1.0, 3.0, 8.0]])
        out, cache = F.relu6_forward(x)
        np.testing.assert_allclose(out, [[0, 3, 6]])
        grad = F.relu6_backward(np.ones_like(x), cache)
        np.testing.assert_allclose(grad, [[0, 1, 0]])


class TestSoftmaxCrossEntropy:
    def test_softmax_sums_to_one(self, rng):
        logits = rng.normal(size=(5, 7)) * 10
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_log_softmax_consistency(self, rng):
        logits = rng.normal(size=(3, 4))
        np.testing.assert_allclose(np.exp(F.log_softmax(logits)), F.softmax(logits))

    def test_cross_entropy_value(self):
        logits = np.log(np.array([[0.7, 0.2, 0.1]]))
        targets = np.array([0])
        loss, _ = F.cross_entropy_forward(logits, targets)
        assert loss == pytest.approx(-np.log(0.7), rel=1e-6)

    def test_cross_entropy_gradient_numeric(self, rng, gradcheck):
        logits = rng.normal(size=(4, 5))
        targets = rng.integers(0, 5, size=4)
        _, cache = F.cross_entropy_forward(logits, targets)
        grad = F.cross_entropy_backward(cache)

        def loss():
            value, _ = F.cross_entropy_forward(logits, targets)
            return value

        np.testing.assert_allclose(grad, gradcheck(loss, logits), atol=1e-5)

    def test_label_smoothing_gradient_numeric(self, rng, gradcheck):
        logits = rng.normal(size=(3, 4))
        targets = rng.integers(0, 4, size=3)
        _, cache = F.cross_entropy_forward(logits, targets, label_smoothing=0.1)
        grad = F.cross_entropy_backward(cache)

        def loss():
            value, _ = F.cross_entropy_forward(logits, targets, label_smoothing=0.1)
            return value

        np.testing.assert_allclose(grad, gradcheck(loss, logits), atol=1e-5)

    def test_label_smoothing_increases_loss_on_confident_prediction(self):
        logits = np.array([[10.0, -10.0]])
        targets = np.array([0])
        plain, _ = F.cross_entropy_forward(logits, targets)
        smoothed, _ = F.cross_entropy_forward(logits, targets, label_smoothing=0.2)
        assert smoothed > plain
