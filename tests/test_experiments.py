"""Tests for the figure-reproduction experiment runners (tiny configurations)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    Fig1Config,
    Fig2Config,
    Fig3Config,
    Fig4Config,
    Fig7Config,
    Fig8Config,
    HeadlineConfig,
    TINY_SCALE,
    aggregate_fig8,
    aggregate_overheads,
    clear_model_cache,
    format_table,
    make_personalization_setup,
    pretrained_universal_model,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig7,
    run_fig8,
    run_headline,
    sparsity_for_class_count,
)

MICRO_SCALE = ExperimentScale(
    name="micro",
    dataset_preset="synthetic-tiny",
    model_name="resnet_tiny",
    pretrain_epochs=1,
    finetune_epochs=1,
    prune_iterations=1,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_model_cache()
    yield
    clear_model_cache()


class TestCommonInfrastructure:
    def test_pretrained_model_cached_and_cloned(self):
        m1, acc1 = pretrained_universal_model(MICRO_SCALE, num_classes=8, input_size=12, seed=0)
        m2, acc2 = pretrained_universal_model(MICRO_SCALE, num_classes=8, input_size=12, seed=0)
        assert acc1 == acc2
        assert m1 is not m2
        # Mutating one clone must not affect the other.
        next(iter(m1.parameters())).data += 1.0
        p1 = next(iter(m1.parameters())).data
        p2 = next(iter(m2.parameters())).data
        assert not np.allclose(p1, p2)

    def test_personalization_setup_resizes_head(self):
        setup = make_personalization_setup(MICRO_SCALE, num_user_classes=3, seed=0)
        assert setup.model.num_classes == 3
        assert setup.profile.num_classes == 3
        x, y = next(iter(setup.train_loader))
        assert set(np.unique(y)) <= {0, 1, 2}
        logits = setup.model(x)
        assert logits.shape[1] == 3

    def test_format_table(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 20, "b": 0.25}]
        text = format_table(rows)
        assert "a" in text and "0.500" in text
        assert format_table([]) == "(no rows)"


class TestFig1:
    def test_rows_and_shape(self):
        config = Fig1Config(
            models=("resnet_tiny",), nm_ratios=((2, 4),), num_user_classes=3, scale=MICRO_SCALE
        )
        rows = run_fig1(config)
        assert len(rows) == 2  # dense + 2:4
        assert {"model", "pattern", "sparsity", "accuracy", "accuracy_drop"} <= set(rows[0])
        nm_row = [r for r in rows if r["pattern"] == "2:4"][0]
        assert nm_row["sparsity"] == pytest.approx(0.5, abs=0.03)


class TestFig2:
    def test_distribution_reported(self):
        config = Fig2Config(num_user_classes=3, target_sparsity=0.8, scale=MICRO_SCALE)
        rows = run_fig2(config)
        assert rows[-1]["layer"] == "<global>"
        assert rows[-1]["global_sparsity"] == pytest.approx(0.8, abs=0.06)
        layer_rows = rows[:-1]
        assert all(0.0 <= r["sparsity"] <= 1.0 for r in layer_rows)
        assert rows[-1]["sparsity_spread"] >= 0.0


class TestFig3:
    def test_methods_present_and_crisp_competitive(self):
        config = Fig3Config(
            sparsity_levels=(0.75,), block_sizes=(8,), num_user_classes=3, scale=MICRO_SCALE
        )
        rows = run_fig3(config)
        methods = {r["method"] for r in rows}
        assert methods == {"block", "crisp"}
        crisp = [r for r in rows if r["method"] == "crisp"][0]
        block = [r for r in rows if r["method"] == "block"][0]
        assert crisp["achieved_sparsity"] == pytest.approx(0.75, abs=0.06)
        assert block["achieved_sparsity"] == pytest.approx(0.75, abs=0.06)

    def test_skips_targets_below_nm_floor(self):
        config = Fig3Config(
            sparsity_levels=(0.3,), block_sizes=(8,), nm_ratios=((2, 4),),
            num_user_classes=3, scale=MICRO_SCALE,
        )
        rows = run_fig3(config)
        assert all(r["method"] == "block" for r in rows)


class TestFig4:
    def test_overhead_ordering(self):
        rows = run_fig4(Fig4Config())
        overheads = aggregate_overheads(rows)
        # The Fig. 4 claim: CSR and ELLPACK need several times more metadata.
        assert overheads["csr"] > 2.0
        assert overheads["ellpack"] > overheads["csr"]
        assert overheads["crisp"] == pytest.approx(1.0)

    def test_row_keys(self):
        rows = run_fig4(Fig4Config(layer_shapes=(("l", 32, 32),)))
        assert {"layer", "format", "metadata_bits", "total_bits", "metadata_vs_crisp"} <= set(rows[0])
        assert len(rows) == 5  # five formats for the single layer


class TestFig7:
    def test_sparsity_for_class_count_monotone(self):
        values = [sparsity_for_class_count(k, 40) for k in (1, 5, 10, 40)]
        assert values == sorted(values, reverse=True)
        assert values[0] == pytest.approx(0.9)

    def test_invalid_class_count(self):
        with pytest.raises(ValueError):
            sparsity_for_class_count(0, 10)

    def test_rows_structure(self):
        config = Fig7Config(class_counts=(2,), scale=MICRO_SCALE, max_sparsity=0.75)
        rows = run_fig7(config)
        methods = {r["method"] for r in rows}
        assert methods == {"dense", "crisp", "channel"}
        crisp = [r for r in rows if r["method"] == "crisp"][0]
        dense = [r for r in rows if r["method"] == "dense"][0]
        assert crisp["flops_ratio"] < dense["flops_ratio"]


class TestFig8:
    def test_rows_and_aggregation(self):
        config = Fig8Config(nm_ratios=((2, 4),), block_sizes=(64,), global_sparsities=(0.9,))
        rows = run_fig8(config)
        assert len(rows) == 9 * 4  # 9 layers x (dense, nvidia, dstc, crisp-b64)
        agg = aggregate_fig8(rows)
        by_acc = {r["accelerator"]: r for r in agg}
        assert by_acc["dense"]["speedup_vs_dense"] == pytest.approx(1.0)
        assert by_acc["crisp-stc-b64"]["speedup_vs_dense"] > by_acc["nvidia-stc"]["speedup_vs_dense"]
        assert by_acc["nvidia-stc"]["speedup_vs_dense"] <= 2.0 + 1e-9

    def test_paper_shape_across_patterns(self):
        config = Fig8Config(block_sizes=(64,), global_sparsities=(0.9,))
        agg = aggregate_fig8(run_fig8(config))
        crisp = {r["pattern"]: r["speedup_vs_dense"] for r in agg if r["accelerator"] == "crisp-stc-b64"}
        assert crisp["1:4"] >= crisp["2:4"] >= crisp["3:4"]


class TestHeadline:
    def test_summary_keys_and_claims(self):
        config = HeadlineConfig(
            fig3=Fig3Config(sparsity_levels=(0.75,), block_sizes=(8,),
                            num_user_classes=3, scale=MICRO_SCALE),
            fig8=Fig8Config(nm_ratios=((1, 4),), block_sizes=(64,), global_sparsities=(0.9,)),
        )
        summary = run_headline(config)
        assert {"crisp_accuracy", "block_accuracy", "dense_accuracy", "crisp_sparsity",
                "max_speedup", "max_energy_efficiency"} <= set(summary)
        assert summary["max_speedup"] > summary["nvidia_max_speedup"]
        assert summary["crisp_sparsity"] > 0.6
