"""End-to-end integration tests spanning data, models, pruning, formats and hardware."""

import numpy as np
import pytest

from repro.data import build_user_loaders, make_dataset, sample_user_profile
from repro.hw import CrispSTC, DenseAccelerator, compare_accelerators, workloads_from_model
from repro.nn.models import resnet_tiny, vgg_tiny
from repro.nn.models.base import prunable_layers
from repro.nn.trainer import TrainConfig, Trainer, evaluate
from repro.pruning import CRISPConfig, CRISPPruner, collect_model_stats, model_storage_bits
from repro.sparsity.formats import CRISPFormat
from repro.sparsity.sparse_ops import crisp_matmul, masked_matmul


@pytest.fixture(scope="module")
def personalization_run():
    """One full pipeline run shared by the integration assertions (module-scoped
    because it trains and prunes a model)."""
    dataset = make_dataset("synthetic-tiny", seed=3)
    profile = sample_user_profile(dataset, 3, seed=3)
    train_loader, val_loader = build_user_loaders(dataset, profile, batch_size=16, seed=3)

    model = resnet_tiny(num_classes=3, input_size=dataset.image_size, seed=3)
    trainer = Trainer(model, TrainConfig(epochs=3, lr=0.05))
    trainer.fit(train_loader, val_loader)
    dense_accuracy = evaluate(model, iter(val_loader))

    config = CRISPConfig(
        n=2, m=4, block_size=8, target_sparsity=0.8, iterations=2,
        finetune_epochs=2, saliency_batches=2,
    )
    result = CRISPPruner(model, config).prune(train_loader, val_loader)
    return {
        "dataset": dataset,
        "model": model,
        "config": config,
        "result": result,
        "dense_accuracy": dense_accuracy,
        "train_loader": train_loader,
        "val_loader": val_loader,
    }


class TestEndToEndPruning:
    def test_sparsity_target_met(self, personalization_run):
        result = personalization_run["result"]
        assert result.final_sparsity == pytest.approx(0.8, abs=0.05)

    def test_accuracy_retained_above_chance(self, personalization_run):
        result = personalization_run["result"]
        # 3 classes -> chance is 1/3; the pruned personalised model should do
        # meaningfully better after fine-tuning.
        assert result.final_accuracy > 0.4

    def test_flops_reduced(self, personalization_run):
        model = personalization_run["model"]
        stats = collect_model_stats(model, personalization_run["dataset"].image_size)
        assert stats.flops_ratio < 0.6

    def test_storage_reduced(self, personalization_run):
        model = personalization_run["model"]
        bits = model_storage_bits(model, n=2, m=4, block_size=8)
        assert bits["total_bits"] < bits["dense_bits"] * 0.6


class TestPrunedModelInference:
    def test_pruned_layers_compute_with_crisp_format(self, personalization_run):
        """Every pruned layer's GEMM must be exactly representable and
        computable in the CRISP storage format (lossless round trip through
        the accelerator datapath model)."""
        model = personalization_run["model"]
        rng = np.random.default_rng(0)
        checked = 0
        for name, layer in prunable_layers(model).items():
            weight2d = layer.reshaped_weight()
            if weight2d.shape[0] < 8 or weight2d.shape[1] < 8:
                continue
            mask2d = layer.weight.mask.reshape(weight2d.shape[1], -1).T
            sparse = weight2d * mask2d
            fmt = CRISPFormat.from_dense(sparse, n=2, m=4, block_size=8)
            assert fmt.is_lossless, name
            activations = rng.normal(size=(weight2d.shape[0], 2))
            np.testing.assert_allclose(
                crisp_matmul(fmt, activations),
                masked_matmul(weight2d, mask2d, activations),
                atol=1e-8,
                err_msg=name,
            )
            checked += 1
        assert checked >= 3


class TestHardwareEstimationOfPrunedModel:
    def test_workload_extraction_and_speedup(self, personalization_run):
        model = personalization_run["model"]
        dataset = personalization_run["dataset"]
        workloads = workloads_from_model(model, input_size=dataset.image_size)
        assert len(workloads) == len(prunable_layers(model))

        report = compare_accelerators(workloads, [DenseAccelerator(), CrispSTC(16)])
        speedup = report.overall_speedup("crisp-stc-b16")
        assert speedup > 1.0

    def test_denser_model_gets_lower_speedup(self, personalization_run):
        dataset = personalization_run["dataset"]
        pruned_model = personalization_run["model"]
        dense_model = vgg_tiny(num_classes=3, input_size=dataset.image_size, seed=0)

        pruned_wl = workloads_from_model(pruned_model, input_size=dataset.image_size)
        dense_wl = workloads_from_model(dense_model, input_size=dataset.image_size)

        pruned_report = compare_accelerators(pruned_wl, [DenseAccelerator(), CrispSTC(16)])
        dense_report = compare_accelerators(dense_wl, [DenseAccelerator(), CrispSTC(16)])
        assert (
            pruned_report.overall_speedup("crisp-stc-b16")
            > dense_report.overall_speedup("crisp-stc-b16")
        )


class TestReproducibility:
    def test_same_seed_same_pruning_decisions(self):
        def run_once():
            dataset = make_dataset("synthetic-tiny", seed=11)
            profile = sample_user_profile(dataset, 3, seed=11)
            train_loader, val_loader = build_user_loaders(dataset, profile, batch_size=16, seed=11)
            model = resnet_tiny(num_classes=3, input_size=dataset.image_size, seed=11)
            config = CRISPConfig(
                n=2, m=4, block_size=8, target_sparsity=0.75, iterations=1,
                finetune_epochs=1, saliency_batches=1,
            )
            result = CRISPPruner(model, config).prune(train_loader, val_loader)
            masks = {
                name: layer.weight.mask.copy()
                for name, layer in prunable_layers(model).items()
            }
            return result.final_sparsity, masks

        sparsity_a, masks_a = run_once()
        sparsity_b, masks_b = run_once()
        assert sparsity_a == pytest.approx(sparsity_b)
        for name in masks_a:
            np.testing.assert_allclose(masks_a[name], masks_b[name], err_msg=name)
