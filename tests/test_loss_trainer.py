"""Tests for loss functions and the training / evaluation loops."""

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.loss import CrossEntropyLoss, accuracy, top_k_accuracy
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.nn.trainer import TrainConfig, Trainer, accumulate_gradients, evaluate
from repro.data import DataLoader


class TinyClassifier(Module):
    """A linear classifier on flattened images, for fast trainer tests."""

    def __init__(self, in_features, num_classes, seed=0):
        super().__init__()
        self.fc = Linear(in_features, num_classes, seed=seed)
        self.input_size = 12
        self.num_classes = num_classes

    def forward(self, x):
        self._shape = x.shape
        return self.fc(x.reshape(x.shape[0], -1))

    def backward(self, grad):
        return self.fc.backward(grad).reshape(self._shape)


class TestCrossEntropyLoss:
    def test_uniform_logits(self):
        loss_fn = CrossEntropyLoss()
        logits = np.zeros((4, 10))
        targets = np.arange(4)
        assert loss_fn(logits, targets) == pytest.approx(np.log(10))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()

    def test_invalid_shapes(self):
        loss_fn = CrossEntropyLoss()
        with pytest.raises(ValueError):
            loss_fn(np.zeros((2, 3, 4)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            loss_fn(np.zeros((2, 3)), np.zeros(5, dtype=int))

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.5)

    def test_gradient_sums_to_zero_per_sample(self, rng):
        loss_fn = CrossEntropyLoss()
        logits = rng.normal(size=(5, 7))
        targets = rng.integers(0, 7, size=5)
        loss_fn(logits, targets)
        grad = loss_fn.backward()
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)


class TestAccuracyMetrics:
    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        targets = np.array([0, 1, 1])
        assert accuracy(logits, targets) == pytest.approx(2 / 3)

    def test_top_k(self):
        logits = np.array([[0.5, 0.3, 0.2], [0.1, 0.2, 0.7]])
        targets = np.array([1, 0])
        assert top_k_accuracy(logits, targets, k=1) == pytest.approx(0.0)
        assert top_k_accuracy(logits, targets, k=2) == pytest.approx(0.5)
        assert top_k_accuracy(logits, targets, k=3) == pytest.approx(1.0)

    def test_top_k_clamped(self):
        logits = np.array([[0.5, 0.5]])
        assert top_k_accuracy(logits, np.array([0]), k=10) == 1.0


def _separable_loaders(rng, num_classes=3, dim=12, samples=60):
    """A linearly separable toy dataset (one Gaussian blob per class)."""
    centers = rng.normal(scale=3.0, size=(num_classes, dim))
    xs, ys = [], []
    for c in range(num_classes):
        xs.append(centers[c] + 0.3 * rng.normal(size=(samples // num_classes, dim)))
        ys.append(np.full(samples // num_classes, c))
    x = np.concatenate(xs).reshape(-1, 1, 1, dim)
    y = np.concatenate(ys)
    train = DataLoader(x, y, batch_size=10, seed=0)
    val = DataLoader(x, y, batch_size=10, shuffle=False)
    return train, val


class TestTrainer:
    def test_training_reduces_loss(self, rng):
        train, val = _separable_loaders(rng)
        model = TinyClassifier(12, 3, seed=0)
        trainer = Trainer(model, TrainConfig(epochs=5, lr=0.1, weight_decay=0.0))
        history = trainer.fit(train, val)
        assert history.train_loss[-1] < history.train_loss[0]
        assert history.final_val_accuracy > 0.9
        assert history.best_val_accuracy >= history.final_val_accuracy - 1e-9

    def test_max_batches_per_epoch(self, rng):
        train, _ = _separable_loaders(rng)
        model = TinyClassifier(12, 3, seed=0)
        trainer = Trainer(model, TrainConfig(epochs=1, lr=0.1, max_batches_per_epoch=1))
        history = trainer.fit(train)
        assert len(history.train_loss) == 1

    def test_evaluate_counts_correctly(self, rng):
        train, val = _separable_loaders(rng)
        model = TinyClassifier(12, 3, seed=0)
        acc = evaluate(model, iter(val))
        assert 0.0 <= acc <= 1.0

    def test_evaluate_empty_raises(self):
        model = TinyClassifier(12, 3)
        with pytest.raises(ValueError):
            evaluate(model, iter([]))

    def test_empty_epoch_raises(self):
        model = TinyClassifier(12, 3)
        trainer = Trainer(model)
        with pytest.raises(ValueError):
            trainer.train_epoch(iter([]))


class TestAccumulateGradients:
    def test_returns_grads_for_all_parameters(self, rng):
        train, _ = _separable_loaders(rng)
        model = TinyClassifier(12, 3, seed=0)
        grads = accumulate_gradients(model, iter(train))
        assert "fc.weight" in grads and "fc.bias" in grads
        assert grads["fc.weight"].shape == model.fc.weight.shape

    def test_model_left_clean(self, rng):
        train, _ = _separable_loaders(rng)
        model = TinyClassifier(12, 3, seed=0)
        before = model.fc.weight.data.copy()
        accumulate_gradients(model, iter(train), max_batches=2)
        np.testing.assert_allclose(model.fc.weight.data, before)
        assert model.fc.weight.grad is None

    def test_averaging_over_batches(self, rng):
        train, _ = _separable_loaders(rng)
        model = TinyClassifier(12, 3, seed=0)
        one = accumulate_gradients(model, iter(train), max_batches=1)
        many = accumulate_gradients(model, iter(train), max_batches=4)
        # Averaged gradients should have comparable magnitude, not 4x.
        ratio = np.abs(many["fc.weight"]).mean() / np.abs(one["fc.weight"]).mean()
        assert ratio < 3.0

    def test_no_batches_raises(self):
        model = TinyClassifier(12, 3)
        with pytest.raises(ValueError):
            accumulate_gradients(model, iter([]))

    def test_training_with_optimizer_respects_masks(self, rng):
        train, _ = _separable_loaders(rng)
        model = TinyClassifier(12, 3, seed=0)
        mask = np.zeros_like(model.fc.weight.data)
        mask[:, :6] = 1.0
        model.fc.weight.set_mask(mask)
        trainer = Trainer(model, TrainConfig(epochs=1, lr=0.1))
        trainer.fit(train)
        assert np.count_nonzero(model.fc.weight.data[:, 6:]) == 0
