"""Tests for repro.pipeline: content-addressed, resumable experiment DAGs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.pipeline import (
    Pipeline,
    PipelineStore,
    Step,
    build_pipeline,
    canonical_dumps,
    code_fingerprint,
    content_key,
    pipeline_names,
    standard_chain,
)


def counting_steps(calls):
    """A small 3-step diamond-free chain that counts executions."""

    def produce(ctx):
        calls.append("produce")
        ctx.save_arrays("data", values=np.arange(ctx.params["n"], dtype=np.float64))
        return {"n": ctx.params["n"]}

    def double(ctx):
        calls.append("double")
        values = ctx.load_arrays("produce", "data")["values"]
        ctx.save_arrays("data", values=values * ctx.params["factor"])
        return {"total": float((values * ctx.params["factor"]).sum())}

    def summarize(ctx):
        calls.append("summarize")
        return {"total": ctx.inputs["double"]["total"], "n": ctx.inputs["produce"]["n"]}

    return [
        Step("produce", produce, params={"n": 4}),
        Step("double", double, params={"factor": 3}, deps=("produce",)),
        Step("summarize", summarize, deps=("produce", "double")),
    ]


class TestFingerprint:
    def test_canonical_dumps_is_sorted_and_compact(self):
        assert canonical_dumps({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'

    def test_canonical_dumps_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_dumps({"x": float("nan")})

    def test_content_key_order_invariant(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})
        assert content_key({"a": 1}) != content_key({"a": 2})

    def test_code_fingerprint_tracks_source(self):
        def f(x):
            return x + 1

        def g(x):
            return x + 2

        assert code_fingerprint(f) != code_fingerprint(g)
        assert code_fingerprint(f) == code_fingerprint(f)


class TestPipeline:
    def test_rerun_is_all_verified_hits_byte_identical(self, tmp_path):
        calls = []
        store = PipelineStore(tmp_path / "store")
        first = Pipeline(counting_steps(calls), store).run()
        assert first.ran == 3 and first.hits == 0
        assert calls == ["produce", "double", "summarize"]

        second = Pipeline(counting_steps(calls), store).run()
        assert second.all_hits and second.ran == 0
        assert len(calls) == 3  # nothing executed again
        for name in ("produce", "double", "summarize"):
            assert second[name].output_sha256 == first[name].output_sha256
            assert second[name].output == first[name].output

    def test_param_edit_invalidates_step_and_downstream_only(self, tmp_path):
        calls = []
        store = PipelineStore(tmp_path / "store")
        Pipeline(counting_steps(calls), store).run()
        calls.clear()

        edited = counting_steps(calls)
        edited[1] = Step(
            "double", edited[1].fn, params={"factor": 5}, deps=("produce",)
        )
        summary = Pipeline(edited, store).run()
        assert summary["produce"].hit
        assert not summary["double"].hit
        assert not summary["summarize"].hit  # downstream key changed too
        assert calls == ["double", "summarize"]
        assert summary["summarize"].output["total"] == pytest.approx(0 + 5 + 10 + 15)

    def test_corrupted_entry_is_evicted_and_rerun(self, tmp_path):
        calls = []
        store = PipelineStore(tmp_path / "store")
        first = Pipeline(counting_steps(calls), store).run()
        # Tamper with a committed artifact: verification must evict + re-run.
        artifact = first["produce"].artifact_dir / "data.npz"
        artifact.write_bytes(b"garbage")
        calls.clear()
        summary = Pipeline(counting_steps(calls), store).run()
        assert not summary["produce"].hit
        assert "produce" in calls
        # Downstream keys were unchanged, so they stay hits.
        assert summary["double"].hit and summary["summarize"].hit

    def test_interrupted_run_resumes_from_completed_steps(self, tmp_path):
        calls = []
        store = PipelineStore(tmp_path / "store")
        steps = counting_steps(calls)

        def boom(ctx):
            raise RuntimeError("interrupted")

        with pytest.raises(RuntimeError):
            Pipeline([steps[0], steps[1], Step("summarize", boom, deps=("produce", "double"))], store).run()
        calls.clear()
        summary = Pipeline(counting_steps(calls), store).run()
        assert summary["produce"].hit and summary["double"].hit
        assert calls == ["summarize"]

    def test_force_reruns_without_invalidating_downstream(self, tmp_path):
        calls = []
        store = PipelineStore(tmp_path / "store")
        Pipeline(counting_steps(calls), store).run()
        calls.clear()
        summary = Pipeline(counting_steps(calls), store).run(force=["double"])
        assert summary["produce"].hit
        assert not summary["double"].hit
        assert summary["summarize"].hit  # same key, still cached
        assert calls == ["double"]

    def test_status_reports_residency_without_executing(self, tmp_path):
        calls = []
        store = PipelineStore(tmp_path / "store")
        pipeline = Pipeline(counting_steps(calls), store)
        assert [row["cached"] for row in pipeline.status()] == [False] * 3
        pipeline.run()
        assert [row["cached"] for row in pipeline.status()] == [True] * 3
        assert len(calls) == 3

    def test_validation_errors(self, tmp_path):
        store = PipelineStore(tmp_path / "store")
        fn = lambda ctx: {}
        with pytest.raises(ValueError, match="duplicate"):
            Pipeline([Step("a", fn), Step("a", fn)], store)
        with pytest.raises(ValueError, match="unknown step"):
            Pipeline([Step("a", fn, deps=("missing",))], store)
        with pytest.raises(ValueError, match="cycle"):
            Pipeline([Step("a", fn, deps=("b",)), Step("b", fn, deps=("a",))], store)
        with pytest.raises(ValueError, match="path-safe"):
            Step("a/b", fn)

    def test_non_dict_output_rejected_and_staging_discarded(self, tmp_path):
        store = PipelineStore(tmp_path / "store")
        with pytest.raises(TypeError, match="JSON-compatible dict"):
            Pipeline([Step("bad", lambda ctx: 42)], store).run()
        assert not store.has("bad", Pipeline([Step("bad", lambda ctx: 42)], store).key_of("bad"))


class TestStandardChain:
    def test_registry_contains_named_pipelines(self):
        names = pipeline_names()
        assert "standard" in names and "fig1" in names and "loadgen-sweep" in names

    def test_standard_chain_runs_and_resumes(self, tmp_path):
        store = PipelineStore(tmp_path / "store")
        steps = standard_chain(tenants=2, rounds=1, batch=1)
        first = Pipeline(steps, store).run()
        assert first.ran == len(steps)
        score = first["score"].output
        assert set(score["precision_at_k"]) == {"1", "3"}
        # Byte-identical resume from a fresh Pipeline over the same store.
        second = Pipeline(standard_chain(tenants=2, rounds=1, batch=1), store).run()
        assert second.all_hits
        assert second["replay"].output["logits_sha256"] == first["replay"].output["logits_sha256"]

    def test_smoke_pipelines_build(self, tmp_path):
        for name in pipeline_names():
            pipeline = build_pipeline(
                name, PipelineStore(tmp_path / name), smoke=True
            )
            assert pipeline.order  # non-empty, acyclic, resolvable keys
            for step in pipeline.order:
                assert pipeline.key_of(step)


class TestUniversalModelStore:
    def test_universal_model_cached_on_disk_by_content_key(self, tmp_path):
        from repro.serve import service as serve_service
        from repro.serve import set_universal_model_store

        store = PipelineStore(tmp_path / "models")
        spec = dict(
            model_name="resnet_tiny",
            dataset_preset="synthetic-tiny",
            pretrain_epochs=1,
            num_classes=8,
            input_size=12,
            seed=0,
        )
        serve_service.clear_universal_model_cache()
        set_universal_model_store(store)
        try:
            model, accuracy = serve_service.universal_model(**spec)
            assert store.keys("universal-model"), "trained model not persisted"
            # Drop the in-memory tier: the next call must rebuild from disk.
            serve_service.clear_universal_model_cache()
            again, accuracy2 = serve_service.universal_model(**spec)
            assert accuracy2 == pytest.approx(accuracy)
            state, state2 = model.state_dict(), again.state_dict()
            assert set(state) == set(state2)
            for key in state:
                np.testing.assert_array_equal(state[key], state2[key])
        finally:
            set_universal_model_store(None)
            serve_service.clear_universal_model_cache()
