"""Property-style randomized trials for :class:`ConsistentHashRouter`.

Each test sweeps ≥50 seeded trials over random fleets (2–8 shards) and
random tenant sets (1–120 keys), checking the invariants the cluster's
placement correctness rests on:

* **bounded load** — ``balanced_assignments`` never hands a shard more than
  the pigeonhole minimum ``ceil(keys / shards)``, for default and explicit
  bounds, and always partitions the key set exactly;
* **minimal movement** — ``add_shard`` moves keys *only to the new shard*
  (survivors never trade keys among themselves) and ``remove_shard`` moves
  *only the removed shard's* keys; neither is ever a full reshuffle;
* **determinism** — placement is a pure function of (key set, shard set),
  identical across router instances and insertion orders.

Trials are seeded with :func:`numpy.random.default_rng` so every run of the
suite exercises the identical fleet/tenant draws.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cluster import ConsistentHashRouter

TRIALS = list(range(50))


def _random_fleet(seed, min_shards=2):
    """A seeded (router, shards, keys) draw; replicas kept small for speed."""
    rng = np.random.default_rng(seed)
    shards = int(rng.integers(min_shards, 9))
    n_keys = int(rng.integers(1, 121))
    prefix = rng.integers(0, 2**32)
    keys = [f"tenant-{prefix:08x}-{i}" for i in range(n_keys)]
    router = ConsistentHashRouter(range(shards), replicas=32)
    return router, shards, keys


def _owners(table):
    return {key: shard for shard, keys in table.items() for key in keys}


class TestBoundedLoadInvariant:
    @pytest.mark.parametrize("seed", TRIALS)
    def test_default_bound_is_pigeonhole_minimum(self, seed):
        router, shards, keys = _random_fleet(seed)
        table = router.balanced_assignments(keys)
        # Exact partition: every key placed exactly once, no key invented.
        assert sorted(k for ks in table.values() for k in ks) == sorted(keys)
        bound = math.ceil(len(keys) / shards)
        assert max(len(ks) for ks in table.values()) <= bound

    @pytest.mark.parametrize("seed", TRIALS)
    def test_explicit_bound_is_respected_when_feasible(self, seed):
        router, shards, keys = _random_fleet(seed)
        # Any feasible bound (>= pigeonhole minimum) must be honoured.
        slack = math.ceil(len(keys) / shards) + int(np.random.default_rng(seed).integers(0, 3))
        table = router.balanced_assignments(keys, max_load=slack)
        assert max(len(ks) for ks in table.values()) <= slack
        assert sorted(k for ks in table.values() for k in ks) == sorted(keys)

    @pytest.mark.parametrize("seed", TRIALS[:10])
    def test_placement_is_deterministic_across_instances_and_order(self, seed):
        router, shards, keys = _random_fleet(seed)
        twin = ConsistentHashRouter(range(shards), replicas=32)
        shuffled = list(keys)
        np.random.default_rng(seed + 1).shuffle(shuffled)
        assert router.balanced_assignments(keys) == twin.balanced_assignments(shuffled)


class TestMinimalMovement:
    @pytest.mark.parametrize("seed", TRIALS)
    def test_add_shard_moves_keys_only_to_the_new_shard(self, seed):
        router, shards, keys = _random_fleet(seed)
        before = {k: router.route(k) for k in keys}
        router.add_shard(shards)  # new shard id is `shards`
        after = {k: router.route(k) for k in keys}
        moved = {k for k in keys if before[k] != after[k]}
        # Minimality: a moved key can only have moved to the newcomer —
        # survivors never exchange keys with each other.
        assert all(after[k] == shards for k in moved)
        if len(keys) >= 20:
            # No reshuffle: expected movement is ~1/(shards+1); 0.6 leaves
            # generous room for hash variance at 32 replicas.
            assert len(moved) <= 0.6 * len(keys)

    @pytest.mark.parametrize("seed", TRIALS)
    def test_remove_shard_moves_only_its_own_keys(self, seed):
        router, shards, keys = _random_fleet(seed)
        victim = int(np.random.default_rng(seed + 2).integers(0, shards))
        before = {k: router.route(k) for k in keys}
        router.remove_shard(victim)
        after = {k: router.route(k) for k in keys}
        for key in keys:
            if before[key] == victim:
                assert after[key] != victim
            else:
                assert after[key] == before[key]

    @pytest.mark.parametrize("seed", TRIALS)
    def test_balanced_add_shard_is_not_a_reshuffle(self, seed):
        router, shards, keys = _random_fleet(seed)
        if len(keys) < 20:
            pytest.skip("movement fractions are meaningless on tiny key sets")
        before = _owners(router.balanced_assignments(keys))
        router.add_shard(shards)
        after = _owners(router.balanced_assignments(keys))
        moved = sum(1 for k in keys if before[k] != after[k])
        # Bounded-load placement may cascade a few extra moves beyond the
        # ring-minimal set (the load bound tightens), but the bulk of the
        # fleet must keep its owner or shard caches would flush on scale-out.
        assert moved <= 0.6 * len(keys)
        bound = math.ceil(len(keys) / (shards + 1))
        assert max(
            len(ks) for ks in router.balanced_assignments(keys).values()
        ) <= bound

    @pytest.mark.parametrize("seed", TRIALS)
    def test_balanced_remove_shard_keeps_survivor_bound(self, seed):
        router, shards, keys = _random_fleet(seed, min_shards=3)
        victim = int(np.random.default_rng(seed + 3).integers(0, shards))
        before = _owners(router.balanced_assignments(keys))
        router.remove_shard(victim)
        table = router.balanced_assignments(keys)
        after = _owners(table)
        # The dead shard owns nothing; the survivors still meet the bound.
        assert victim not in table
        assert max(len(ks) for ks in table.values()) <= math.ceil(len(keys) / (shards - 1))
        if len(keys) >= 20:
            stayed = sum(1 for k in keys if before[k] == after[k] and before[k] != victim)
            not_on_victim = sum(1 for k in keys if before[k] != victim)
            # Survivors keep the clear majority of their keys.
            assert stayed >= 0.4 * not_on_victim
