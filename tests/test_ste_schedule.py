"""Tests for the straight-through estimator and the sparsity schedules."""

import numpy as np
import pytest

from repro.nn.models.base import prunable_layers
from repro.pruning.schedule import (
    SparsitySchedule,
    cubic_schedule,
    linear_schedule,
    one_shot_schedule,
)
from repro.pruning.ste import STEConfig, refresh_nm_masks, ste_finetune
from repro.sparsity.masks import check_nm_compliance


class TestRefreshNMMasks:
    def test_installs_compliant_masks(self, tiny_resnet):
        masks = refresh_nm_masks(tiny_resnet, 2, 4)
        layers = prunable_layers(tiny_resnet)
        assert set(masks) == set(layers)
        for name, layer in layers.items():
            assert layer.weight.mask is not None
            assert check_nm_compliance(masks[name], 2, 4, axis=0)

    def test_uses_saliency_when_provided(self, tiny_resnet):
        layers = prunable_layers(tiny_resnet)
        name, layer = next(iter(layers.items()))
        shape = layer.reshaped_weight().shape
        saliency = {name: np.zeros(shape)}
        saliency[name][0, :] = 10.0  # only the first row is "important"
        masks = refresh_nm_masks(tiny_resnet, 1, 4, saliency=saliency)
        assert masks[name][0].sum() == shape[1]  # first row fully kept

    def test_preserves_fully_pruned_columns(self, tiny_resnet):
        layers = prunable_layers(tiny_resnet)
        name, layer = next(iter(layers.items()))
        shape = layer.reshaped_weight().shape
        # Block-prune the second half of the output channels.
        coarse = np.ones(shape)
        coarse[:, shape[1] // 2 :] = 0.0
        layer.set_reshaped_mask(coarse)
        masks = refresh_nm_masks(tiny_resnet, 2, 4)
        assert masks[name][:, shape[1] // 2 :].sum() == 0


class TestSTEFinetune:
    def test_dense_weights_keep_evolving(self, tiny_resnet, tiny_loaders):
        train_loader, _ = tiny_loaders
        refresh_nm_masks(tiny_resnet, 2, 4)
        layers = prunable_layers(tiny_resnet)
        name, layer = next(iter(layers.items()))
        pruned_positions = layer.weight.mask == 0
        before = layer.weight.data[pruned_positions].copy()

        loss = ste_finetune(
            tiny_resnet,
            lambda: iter(train_loader),
            STEConfig(epochs=1, lr=0.05, max_batches_per_epoch=2),
        )
        assert np.isfinite(loss)
        after = layer.weight.data[pruned_positions]
        # Straight-through updates reach the masked (pruned) weights.
        assert not np.allclose(before, after)

    def test_forward_still_masked(self, tiny_resnet, tiny_loaders, small_batch):
        train_loader, _ = tiny_loaders
        refresh_nm_masks(tiny_resnet, 2, 4)
        ste_finetune(
            tiny_resnet,
            lambda: iter(train_loader),
            STEConfig(epochs=1, max_batches_per_epoch=1),
        )
        layers = prunable_layers(tiny_resnet)
        _, layer = next(iter(layers.items()))
        effective = layer.weight.effective()
        assert np.count_nonzero(effective[layer.weight.mask == 0]) == 0

    def test_empty_loader_returns_nan(self, tiny_resnet):
        loss = ste_finetune(tiny_resnet, lambda: iter([]), STEConfig(epochs=1))
        assert np.isnan(loss)


class TestSchedules:
    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            SparsitySchedule(())
        with pytest.raises(ValueError):
            SparsitySchedule((0.5, 0.4))
        with pytest.raises(ValueError):
            SparsitySchedule((1.0,))

    def test_schedule_accessors(self):
        schedule = SparsitySchedule((0.5, 0.7, 0.9))
        assert schedule.num_iterations == 3
        assert schedule.final_target == 0.9
        assert schedule[1] == 0.7
        assert list(schedule) == [0.5, 0.7, 0.9]

    def test_linear_schedule(self):
        schedule = linear_schedule(0.5, 0.9, 4)
        assert schedule.num_iterations == 4
        assert schedule[0] == pytest.approx(0.6)
        assert schedule.final_target == pytest.approx(0.9)

    def test_linear_single_iteration(self):
        schedule = linear_schedule(0.5, 0.9, 1)
        assert list(schedule) == [0.9]

    def test_linear_invalid(self):
        with pytest.raises(ValueError):
            linear_schedule(0.5, 0.9, 0)
        with pytest.raises(ValueError):
            linear_schedule(0.9, 0.5, 3)

    def test_cubic_schedule_front_loads_pruning(self):
        cubic = cubic_schedule(0.0, 0.9, 5)
        linear = linear_schedule(0.0, 0.9, 5)
        # Cubic prunes more aggressively in the first iterations.
        assert cubic[0] > linear[0]
        assert cubic.final_target == pytest.approx(0.9)

    def test_cubic_invalid(self):
        with pytest.raises(ValueError):
            cubic_schedule(0.5, 0.4, 3)

    def test_one_shot(self):
        schedule = one_shot_schedule(0.85)
        assert schedule.num_iterations == 1
        assert schedule.final_target == 0.85

    def test_monotonic_non_decreasing(self):
        for schedule in (linear_schedule(0.3, 0.95, 7), cubic_schedule(0.3, 0.95, 7)):
            targets = list(schedule)
            assert all(b >= a - 1e-12 for a, b in zip(targets, targets[1:]))
