"""Property-style randomized trials for :class:`FederatedBackend`.

Mirrors ``test_router_properties.py``: ≥50 seeded trials per invariant, all
draws from :func:`numpy.random.default_rng`, so every run exercises the
identical membership/tenant/traffic sequences.  The invariants are the
federation's affinity contract:

* **sticky affinity** — repeated traffic for a tenant lands on exactly one
  member, regardless of request interleaving;
* **never split under churn** — across random ``add_member`` /
  ``remove_member`` interleavings, a tenant's serving member changes *only*
  when its previous home left the federation (and then moves wholesale);
* **spillover discipline** — a request leaves its home member only on
  ``RESOURCE_EXHAUSTED``; ``UNAVAILABLE`` (and anything else) propagates
  without touching another member, and spillover never migrates the home;
* **schema-clean merging** — the federated ``stats()`` passes
  ``assert_stats_schema`` through the gateway, with member counters summed.

The stress tier (``-m stress``) closes the loop for real: a shard killed
mid-flight under a live autoscaling cluster, with zero hangs.
"""

from __future__ import annotations

import threading
from types import SimpleNamespace
from typing import Dict, List, Optional, Sequence

import numpy as np
import pytest

from repro.autoscale import CapacityGate, FederatedBackend
from repro.errors import (
    NotFoundError,
    ResourceExhaustedError,
    UnavailableError,
)
from repro.gateway import ServingAPI
from repro.metrics import EventLog, event_log
from repro.serve.types import PredictRequest

TRIALS = list(range(50))


class FakeMember(ServingAPI):
    """A scriptable ServingAPI member: records who served what.

    ``fail_with`` (when set) makes every predict raise that error class —
    the knob the spillover-discipline trials flip per member.
    """

    name = "fake-member"

    def __init__(self, member_name: str, model_ids: Sequence[str] = ()):
        self.member_name = member_name
        self.known: List[str] = list(model_ids)
        self.served: List[str] = []  #: model_id per predict answered here
        self.fail_with: Optional[type] = None

    def personalize(self, request) -> str:
        model_id = f"user-{request.user_id}"
        if model_id not in self.known:
            self.known.append(model_id)
        return model_id

    def predict(self, request: PredictRequest, timeout=None):
        if self.fail_with is not None:
            raise self.fail_with(f"{self.member_name} scripted failure")
        if self.known and request.model_id not in self.known:
            raise NotFoundError(f"unknown model {request.model_id}")
        self.served.append(request.model_id)
        return SimpleNamespace(
            request_id=request.request_id,
            model_id=request.model_id,
            served_by=self.member_name,
            status=200,
        )

    def predict_batch(self, requests, timeout=None):
        results = []
        for request in requests:
            try:
                results.append(self.predict(request, timeout))
            except Exception as exc:  # ApiError subclasses ride in the list
                results.append(exc)
        return results

    def stats(self) -> Dict[str, object]:
        return {
            "latency": {"count": len(self.served), "mean_ms": 1.0,
                        "max_ms": 2.0},
            "cache": {"hits": 0, "misses": 0, "evictions": 0, "hit_rate": 0.0},
            "queue": {"pending": 0, "max_depth": 0},
            "errors": {"failed": 0, "rejected": 0},
        }

    def engine(self, model_id: str):
        raise NotFoundError(model_id)

    def model_ids(self) -> List[str]:
        return sorted(self.known)


def _request(model_id: str, i: int = 0) -> PredictRequest:
    return PredictRequest(model_id, np.zeros((1, 3, 12, 12)),
                          request_id=f"{model_id}-{i}")


def _federation(n_members: int):
    members = {f"member-{i}": FakeMember(f"member-{i}") for i in range(n_members)}
    return FederatedBackend(members), members


class TestStickyAffinity:
    @pytest.mark.parametrize("seed", TRIALS)
    def test_each_tenant_is_served_by_exactly_one_member(self, seed):
        rng = np.random.default_rng(seed)
        fed, members = _federation(int(rng.integers(2, 6)))
        tenants = [f"tenant-{rng.integers(0, 2**32):08x}-{i}"
                   for i in range(int(rng.integers(1, 30)))]
        for i in range(120):
            tenant = tenants[int(rng.integers(0, len(tenants)))]
            fed.predict(_request(tenant, i))
        # Across all interleavings, nobody's traffic ever split.
        owners: Dict[str, set] = {}
        for member_name, member in members.items():
            for model_id in member.served:
                owners.setdefault(model_id, set()).add(member_name)
        assert owners, "no traffic recorded"
        assert all(len(who) == 1 for who in owners.values())
        # And the assignment matches the federation's own home table.
        homes = fed.homes()
        for model_id, who in owners.items():
            assert homes[model_id] == next(iter(who))

    @pytest.mark.parametrize("seed", TRIALS[:10])
    def test_assignment_is_deterministic_across_instances(self, seed):
        rng = np.random.default_rng(seed)
        tenants = [f"tenant-{seed}-{i}" for i in range(int(rng.integers(2, 40)))]
        picks = []
        for _ in range(2):
            fed, _ = _federation(4)
            for tenant in tenants:
                fed.predict(_request(tenant))
            picks.append(fed.homes())
        assert picks[0] == picks[1]


class TestNeverSplitUnderChurn:
    @pytest.mark.parametrize("seed", TRIALS)
    def test_home_moves_only_when_its_member_leaves(self, seed):
        rng = np.random.default_rng(seed)
        fed, members = _federation(3)
        next_member = len(members)
        tenants = [f"tenant-{seed}-{i}" for i in range(12)]
        last_home: Dict[str, str] = {}
        for step in range(80):
            action = rng.random()
            if action < 0.08:  # join a fresh member
                member_name = f"member-{next_member}"
                next_member += 1
                fed.add_member(member_name, FakeMember(member_name))
            elif action < 0.16 and len(fed.member_names()) > 2:
                victim = fed.member_names()[
                    int(rng.integers(0, len(fed.member_names())))
                ]
                fed.remove_member(victim)
            else:
                tenant = tenants[int(rng.integers(0, len(tenants)))]
                response = fed.predict(_request(tenant, step))
                served_by = response.served_by
                previous = last_home.get(tenant)
                if previous is not None and previous in fed.member_names():
                    # The affinity contract: while the home is alive, the
                    # tenant never visits anybody else.
                    assert served_by == previous
                last_home[tenant] = served_by

    @pytest.mark.parametrize("seed", TRIALS[:10])
    def test_join_does_not_rebalance_existing_tenants(self, seed):
        fed, _ = _federation(2)
        tenants = [f"tenant-{seed}-{i}" for i in range(10)]
        for tenant in tenants:
            fed.predict(_request(tenant))
        before = fed.homes()
        fed.add_member("member-late", FakeMember("member-late"))
        for i, tenant in enumerate(tenants):
            fed.predict(_request(tenant, 1000 + i))
        after = fed.homes()
        assert all(after[tenant] == before[tenant] for tenant in tenants)


class TestSpilloverDiscipline:
    @pytest.mark.parametrize("seed", TRIALS)
    def test_spillover_happens_only_on_resource_exhausted(self, seed):
        rng = np.random.default_rng(seed)
        fed, members = _federation(int(rng.integers(2, 5)))
        tenant = f"tenant-{seed}"
        home = members[fed.predict(_request(tenant)).served_by]
        others = [m for m in members.values() if m is not home]
        served_elsewhere_before = [len(m.served) for m in others]

        # UNAVAILABLE propagates; nobody else is consulted.
        home.fail_with = UnavailableError
        with pytest.raises(UnavailableError):
            fed.predict(_request(tenant, 1))
        assert [len(m.served) for m in others] == served_elsewhere_before
        assert fed.spillovers == 0

        # RESOURCE_EXHAUSTED spills to exactly one other member...
        home.fail_with = ResourceExhaustedError
        with event_log(EventLog()) as log:
            response = fed.predict(_request(tenant, 2))
        assert response.served_by != home.member_name
        spilled = [len(m.served) for m in others]
        assert sum(spilled) == sum(served_elsewhere_before) + 1
        assert fed.spillovers == 1
        events = log.events("spillover")
        assert len(events) == 1
        assert events[0].fields["home"] == home.member_name
        assert events[0].fields["via"] == response.served_by

        # ...and does NOT migrate the home: once capacity returns, traffic
        # goes home again.
        home.fail_with = None
        assert fed.predict(_request(tenant, 3)).served_by == home.member_name
        assert fed.homes()[tenant] == home.member_name

    @pytest.mark.parametrize("seed", TRIALS[:10])
    def test_whole_federation_exhausted_propagates(self, seed):
        fed, members = _federation(3)
        tenant = f"tenant-{seed}"
        fed.predict(_request(tenant))
        for member in members.values():
            member.fail_with = ResourceExhaustedError
        with pytest.raises(ResourceExhaustedError):
            fed.predict(_request(tenant, 1))
        assert fed.spillovers == 0

    def test_capacity_gate_trips_deterministically(self):
        inner = FakeMember("gated")
        gate = CapacityGate(inner)
        gate.trip(2)
        for i in range(2):
            with pytest.raises(ResourceExhaustedError):
                gate.predict(_request("tenant-g", i))
        assert gate.predict(_request("tenant-g", 9)).served_by == "gated"
        assert gate.exhausted == 2

    def test_predict_batch_spills_per_item(self):
        fed, members = _federation(2)
        a, b = "tenant-a", "tenant-b2"
        # Establish homes, then gate one of them shut via a CapacityGate
        # members swap: rebuild the federation with the home gated.
        home_a = fed.predict(_request(a)).served_by
        fed.predict(_request(b))
        gated = CapacityGate(FakeMember(home_a))
        fed2 = FederatedBackend(
            {name: (gated if name == home_a else FakeMember(name))
             for name in members}
        )
        gated.trip(1)
        results = fed2.predict_batch([_request(a, 1), _request(b, 1)])
        assert all(getattr(r, "status", None) == 200 for r in results)
        assert fed2.spillovers == 1


class TestMembershipAndMergedStats:
    def test_membership_validation(self):
        fed, _ = _federation(2)
        with pytest.raises(ValueError):
            fed.add_member("member-0", FakeMember("member-0"))  # duplicate
        with pytest.raises(KeyError):
            fed.remove_member("nope")
        fed.remove_member("member-1")
        with pytest.raises(ValueError):
            fed.remove_member("member-0")  # never below one member

    def test_merged_stats_are_schema_clean_and_summed(self):
        from repro.cluster.telemetry import assert_stats_schema

        fed, members = _federation(3)
        for i in range(12):
            fed.predict(_request(f"tenant-{i % 5}", i))
        stats = assert_stats_schema(fed.stats())
        assert stats["latency"]["count"] == 12
        assert stats["members"] == 3
        assert stats["federation"]["tenants"] == 5
        assert set(stats["per_member"]) == set(members)

    def test_federation_through_a_real_gateway_over_real_clusters(self):
        """Two live ClusterServices federated and fronted by the gateway:
        merged stats stay schema-clean and every prediction routes."""
        from repro.cluster import ClusterConfig, ClusterService
        from repro.cluster.telemetry import assert_stats_schema
        from repro.gateway import ClusterBackend, Gateway
        from repro.loadgen import synthetic_fleet

        registry, model_ids = synthetic_fleet(tenants=4, seed=0)
        config = ClusterConfig(shards=2, cache_capacity=2)
        with ClusterService(config, registry=registry) as east:
            with ClusterService(config, registry=registry) as west:
                fed = FederatedBackend(
                    {"east": ClusterBackend(east), "west": ClusterBackend(west)}
                )
                gateway = Gateway(fed)
                rng = np.random.default_rng(0)
                for i in range(12):
                    model_id = model_ids[i % len(model_ids)]
                    response = fed.predict(
                        PredictRequest(model_id, rng.normal(size=(1, 3, 12, 12)),
                                       request_id=f"fed-{i}")
                    )
                    assert response.status == 200
                stats = gateway.stats()
                assert_stats_schema(stats)
                assert stats["latency"]["count"] >= 12
                assert stats["shards"] == 4
                # Shared-registry members both know every id; the union dedups.
                assert fed.model_ids() == sorted(model_ids)
                # Affinity held against the live clusters too.
                homes = fed.homes()
                assert set(homes.values()) <= {"east", "west"}


@pytest.mark.stress
class TestAutoscaledChaosStress:
    def test_shard_killed_mid_flight_under_autoscaling_zero_hangs(self):
        """The satellite stress gate: the shard-failure chaos scenario runs
        against a live cluster while the autoscaler actuates it through the
        telemetry poller — every request resolves, nothing hangs."""
        from repro.experiments.loadgen_cli import LoadgenConfig, run_loadgen

        report, _ = run_loadgen(
            LoadgenConfig(
                scenario="shard-failure",
                shards=2,
                seed=0,
                time_scale=1.0,
                autoscale=True,
                max_shards=4,
                poll_interval_s=0.02,
            )
        )
        assert report.hung == 0
        resolved = report.completed + report.rejected + report.failed
        assert resolved == report.requests
        assert report.autoscale_summary is not None
        assert report.autoscale_summary["ticks"] >= 1
