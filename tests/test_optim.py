"""Tests for SGD and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, ConstantLR, CosineAnnealingLR, StepLR


def make_param(value=1.0, shape=(4,)):
    return Parameter(np.full(shape, value))


class TestSGD:
    def test_plain_gradient_step(self):
        p = make_param(1.0)
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.0)
        p.accumulate_grad(np.full(p.shape, 2.0))
        opt.step()
        np.testing.assert_allclose(p.data, 1.0 - 0.1 * 2.0)

    def test_weight_decay(self):
        p = make_param(1.0)
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.5)
        p.accumulate_grad(np.zeros(p.shape))
        opt.step()
        np.testing.assert_allclose(p.data, 1.0 - 0.1 * 0.5)

    def test_momentum_accumulates(self):
        p = make_param(0.0)
        opt = SGD([p], lr=1.0, momentum=0.9, weight_decay=0.0)
        for _ in range(2):
            p.zero_grad()
            p.accumulate_grad(np.ones(p.shape))
            opt.step()
        # Step 1: v=1 -> -1.  Step 2: v=1.9 -> total -2.9.
        np.testing.assert_allclose(p.data, -2.9)

    def test_nesterov_differs_from_classical(self):
        p1, p2 = make_param(0.0), make_param(0.0)
        opt1 = SGD([p1], lr=1.0, momentum=0.9, weight_decay=0.0, nesterov=False)
        opt2 = SGD([p2], lr=1.0, momentum=0.9, weight_decay=0.0, nesterov=True)
        for opt, p in ((opt1, p1), (opt2, p2)):
            p.accumulate_grad(np.ones(p.shape))
            opt.step()
        assert not np.allclose(p1.data, p2.data)

    def test_respects_masks(self):
        p = make_param(1.0)
        mask = np.array([1.0, 0.0, 1.0, 0.0])
        p.set_mask(mask)
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.0, respect_masks=True)
        p.accumulate_grad(np.ones(p.shape))
        opt.step()
        assert p.data[1] == 0.0 and p.data[3] == 0.0

    def test_ste_mode_updates_masked_weights(self):
        p = make_param(1.0)
        p.mask = np.array([1.0, 0.0, 1.0, 0.0])
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.0, respect_masks=False)
        p.accumulate_grad(np.ones(p.shape))
        opt.step()
        # Dense copy keeps evolving under the mask (straight-through estimator).
        np.testing.assert_allclose(p.data, 0.9)

    def test_skips_frozen_and_gradless(self):
        frozen = make_param(1.0)
        frozen.requires_grad = False
        gradless = make_param(2.0)
        opt = SGD([frozen, gradless], lr=0.1)
        frozen.accumulate_grad(np.ones(frozen.shape))
        opt.step()
        np.testing.assert_allclose(frozen.data, 1.0)
        np.testing.assert_allclose(gradless.data, 2.0)

    def test_zero_grad(self):
        p = make_param()
        opt = SGD([p], lr=0.1)
        p.accumulate_grad(np.ones(p.shape))
        opt.zero_grad()
        assert p.grad is None

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.0)

    def test_state_dict_roundtrip(self):
        p = make_param()
        opt = SGD([p], lr=0.2, momentum=0.9)
        p.accumulate_grad(np.ones(p.shape))
        opt.step()
        state = opt.state_dict()

        opt2 = SGD([p], lr=0.1, momentum=0.5)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.2 and opt2.momentum == 0.9
        np.testing.assert_allclose(opt2._velocity[0], opt._velocity[0])


class TestSchedulers:
    def test_constant(self):
        opt = SGD([make_param()], lr=0.1)
        sched = ConstantLR(opt)
        for _ in range(3):
            assert sched.step() == pytest.approx(0.1)

    def test_step_lr(self):
        opt = SGD([make_param()], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_step_lr_invalid(self):
        with pytest.raises(ValueError):
            StepLR(SGD([make_param()], lr=1.0), step_size=0)

    def test_cosine(self):
        opt = SGD([make_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] > lrs[4] > lrs[-1]
        assert lrs[-1] == pytest.approx(0.0, abs=1e-9)

    def test_cosine_invalid(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(SGD([make_param()], lr=1.0), t_max=0)

    def test_scheduler_updates_optimizer_lr(self):
        opt = SGD([make_param()], lr=1.0)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.5)
