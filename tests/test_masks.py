"""Tests for mask utilities (validation, density, structural checks)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsity.masks import (
    check_block_uniformity,
    check_nm_compliance,
    combine_masks,
    crop_to_shape,
    density,
    pad_to_multiple,
    sparsity,
    validate_mask,
)


class TestValidateMask:
    def test_valid(self):
        mask = validate_mask(np.array([[0, 1], [1, 0]]))
        assert mask.dtype == np.float64

    def test_non_binary_raises(self):
        with pytest.raises(ValueError):
            validate_mask(np.array([[0.5, 1.0]]))

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError):
            validate_mask(np.ones(4))


class TestDensitySparsity:
    def test_values(self):
        mask = np.array([[1, 0], [0, 0]])
        assert density(mask) == pytest.approx(0.25)
        assert sparsity(mask) == pytest.approx(0.75)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            density(np.zeros((0, 0)))

    @given(st.integers(1, 10), st.integers(1, 10), st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_density_plus_sparsity_is_one(self, rows, cols, p):
        rng = np.random.default_rng(42)
        mask = (rng.random((rows, cols)) < p).astype(float)
        assert density(mask) + sparsity(mask) == pytest.approx(1.0)


class TestNMCompliance:
    def test_compliant_2_4(self):
        mask = np.array([[1], [1], [0], [0], [0], [1], [1], [0]], dtype=float)
        assert check_nm_compliance(mask, 2, 4, axis=0)

    def test_violating_2_4(self):
        mask = np.array([[1], [1], [1], [0]], dtype=float)
        assert not check_nm_compliance(mask, 2, 4, axis=0)

    def test_all_zero_group_is_compliant(self):
        mask = np.zeros((8, 3))
        assert check_nm_compliance(mask, 1, 4, axis=0)

    def test_axis_1(self):
        mask = np.array([[1, 1, 0, 0], [1, 0, 1, 0]], dtype=float)
        assert check_nm_compliance(mask, 2, 4, axis=1)

    def test_partial_group_ignored(self):
        # 6 rows with m=4: only the first full group is checked.
        mask = np.ones((6, 1))
        mask[:4, 0] = [1, 1, 0, 0]
        assert check_nm_compliance(mask, 2, 4, axis=0)

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            check_nm_compliance(np.ones((4, 4)), 2, 4, axis=2)


class TestBlockUniformity:
    def test_uniform(self):
        mask = np.zeros((4, 8))
        mask[:, :4] = 1.0  # every block-row keeps exactly one 4x4 block
        assert check_block_uniformity(mask, 4)

    def test_non_uniform(self):
        mask = np.zeros((8, 8))
        mask[:4, :4] = 1.0  # first block-row keeps 1 block, second keeps 0
        assert not check_block_uniformity(mask, 4)

    def test_all_dense_uniform(self):
        assert check_block_uniformity(np.ones((8, 8)), 4)

    def test_all_zero_uniform(self):
        assert check_block_uniformity(np.zeros((8, 8)), 4)


class TestCombineMasks:
    def test_and_semantics(self):
        a = np.array([[1, 1], [0, 1]], dtype=float)
        b = np.array([[1, 0], [0, 1]], dtype=float)
        np.testing.assert_allclose(combine_masks(a, b), [[1, 0], [0, 1]])

    def test_single_mask(self):
        a = np.ones((2, 2))
        np.testing.assert_allclose(combine_masks(a), a)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            combine_masks()

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            combine_masks(np.ones((2, 2)), np.ones((3, 3)))

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_result_never_denser_than_inputs(self, rows, cols):
        rng = np.random.default_rng(rows * 7 + cols)
        a = (rng.random((rows, cols)) < 0.6).astype(float)
        b = (rng.random((rows, cols)) < 0.6).astype(float)
        combined = combine_masks(a, b)
        assert density(combined) <= min(density(a), density(b)) + 1e-12


class TestPadCrop:
    def test_pad_to_multiple(self):
        m = np.ones((5, 7))
        padded = pad_to_multiple(m, 4)
        assert padded.shape == (8, 8)
        np.testing.assert_allclose(padded[:5, :7], 1.0)
        np.testing.assert_allclose(padded[5:, :], 0.0)

    def test_pad_noop_when_aligned(self):
        m = np.ones((8, 8))
        assert pad_to_multiple(m, 4) is m

    def test_pad_invalid_multiple(self):
        with pytest.raises(ValueError):
            pad_to_multiple(np.ones((2, 2)), 0)

    def test_crop(self):
        m = np.ones((8, 8))
        cropped = crop_to_shape(m, (5, 7))
        assert cropped.shape == (5, 7)

    def test_crop_too_large_raises(self):
        with pytest.raises(ValueError):
            crop_to_shape(np.ones((4, 4)), (5, 5))

    @given(st.integers(1, 20), st.integers(1, 20), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_pad_then_crop_roundtrip(self, rows, cols, multiple):
        rng = np.random.default_rng(rows + cols * 31 + multiple)
        m = rng.normal(size=(rows, cols))
        restored = crop_to_shape(pad_to_multiple(m, multiple), (rows, cols))
        np.testing.assert_allclose(restored, m)
