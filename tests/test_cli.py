"""Tests for the experiment command-line interface."""

import pytest

from repro.experiments.cli import EXPERIMENTS, main, run_experiment


class TestCLI:
    def test_all_figures_registered(self):
        assert set(EXPERIMENTS) == {"fig1", "fig2", "fig3", "fig4", "fig7", "fig8", "headline"}

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in [*EXPERIMENTS, "serve", "loadgen"]:
            assert name in out

    def test_no_arguments_shows_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_run_experiment_unknown_name(self):
        with pytest.raises(KeyError):
            run_experiment("table3")

    def test_run_fig4_via_cli(self, capsys):
        """fig4 is pure format accounting (no training), so it is cheap enough
        to exercise the full CLI path end to end."""
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "csr" in out and "ellpack" in out and "crisp" in out
        assert "metadata overhead" in out

    def test_run_fig8_via_cli(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "crisp-stc-b64" in out
        assert "speedup_vs_dense" in out

    def test_run_serve_via_cli(self, capsys):
        from repro.experiments.common import clear_model_cache

        assert main(["serve", "--serve-requests", "4"]) == 0
        clear_model_cache()
        out = capsys.readouterr().out
        assert "tenants:" in out
        assert "micro-batched" in out
        assert "identical predictions" in out
