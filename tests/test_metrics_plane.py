"""Tests for repro.metrics: registry, exposition, events, poller, SLO alerts.

The continuous-observability plane's contract tests: ring-buffer series and
the counter delta clamp, byte-stable Prometheus exposition with a strict
parser round-trip, the structured event log threaded through the serving
seams, the SLO alert state machine, and the two delivery surfaces — the
``GET /metrics`` / ``GET /statsz`` gateway routes and ``loadgen --monitor``.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterService
from repro.cluster.telemetry import assert_stats_schema
from repro.gateway import ClusterBackend, Gateway, serve_http
from repro.gateway.api import LocalBackend
from repro.gateway.wire import ApiRequest
from repro.loadgen import synthetic_fleet
from repro.metrics import (
    CONTENT_TYPE,
    Counter,
    EventLog,
    Gauge,
    MetricsRegistry,
    SLOMonitor,
    TelemetryPoller,
    TimeSeries,
    default_rules,
    event_log,
    get_event_log,
    p99_over,
    parse_text,
    queue_depth_sustained,
    record_sample,
    rejection_burn_rate,
    render_families,
    set_event_log,
)
from repro.metrics import events as events_module
from repro.serve import PersonalizationService, PredictRequest


@pytest.fixture(autouse=True)
def no_global_event_log():
    """Every test starts and ends with the module-level event log off."""
    set_event_log(None)
    yield
    set_event_log(None)


def fleet_inputs(rng, n=2):
    return rng.normal(size=(n, 3, 12, 12)).astype(np.float64)


def fake_stats(count=10, failed=0, rejected=0, pending=0, p99=5.0, shards=None):
    """A minimal unified-schema stats payload for deterministic sampling."""
    stats = {
        "latency": {
            "count": count, "mean_ms": 2.0, "max_ms": p99,
            "p50_ms": 1.0, "p95_ms": 4.0, "p99_ms": p99,
        },
        "cache": {"hits": 3, "misses": 2, "evictions": 1, "hit_rate": 0.6},
        "queue": {"pending": pending, "max_depth": max(pending, 4)},
        "errors": {"failed": failed, "rejected": rejected},
    }
    if shards is not None:
        stats["shards"] = shards
    return stats


class TestTimeSeries:
    def test_ring_drops_oldest(self):
        ts = TimeSeries(window=3)
        for i in range(5):
            ts.record(float(i), float(i * 10))
        assert len(ts) == 3
        assert ts.values() == [20.0, 30.0, 40.0]
        assert ts.last() == (4.0, 40.0)

    def test_tail_handles_short_series(self):
        ts = TimeSeries(window=8)
        ts.record(0.0, 1.0)
        assert ts.tail(4) == [1.0]
        ts.record(1.0, 2.0)
        ts.record(2.0, 3.0)
        assert ts.tail(2) == [2.0, 3.0]

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            TimeSeries(window=0)


class TestRegistry:
    def test_counter_inc_and_labels(self):
        registry = MetricsRegistry(namespace="t")
        counter = registry.counter("reqs_total", "help")
        counter.inc(t=1.0, kind="a")
        counter.inc(2.0, t=2.0, kind="a")
        counter.inc(t=1.5, kind="b")
        assert counter.samples() == [
            ((("kind", "a"),), 3.0),
            ((("kind", "b"),), 1.0),
        ]
        with pytest.raises(ValueError, match=">= 0"):
            counter.inc(-1.0)

    def test_observe_total_clamp(self):
        counter = Counter("c_total", "")
        # First reading establishes the baseline: value = raw, delta = 0.
        assert counter.observe_total(10.0, t=0.0) == 0.0
        assert counter.samples() == [((), 10.0)]
        assert counter.observe_total(14.0, t=1.0) == 4.0
        # A raw drop (dead shard leaving the totals) flattens, never bends back.
        assert counter.observe_total(6.0, t=2.0) == 0.0
        assert counter.samples() == [((), 14.0)]
        assert counter.observe_total(8.0, t=3.0) == 2.0
        assert counter.series().values() == [10.0, 14.0, 14.0, 16.0]

    def test_get_or_create_and_kind_conflict(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        assert registry.gauge("depth") is gauge
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("depth")

    def test_name_validation_and_namespace(self):
        registry = MetricsRegistry(namespace="repro")
        assert registry.qualify("x_total") == "repro_x_total"
        assert registry.qualify("repro_x_total") == "repro_x_total"
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad name")
        # Namespacing makes a leading digit legal; bare names reject it.
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("9leading", "")

    def test_summary_min_max_last(self):
        registry = MetricsRegistry(namespace="t")
        gauge = registry.gauge("g")
        for t, v in enumerate([3.0, 1.0, 2.0]):
            gauge.set(v, t=float(t))
        assert registry.summary()["t_g"] == {
            "last": 2.0, "min": 1.0, "max": 3.0, "samples": 3,
        }


class TestExposition:
    def build(self):
        registry = MetricsRegistry(namespace="t")
        registry.counter("requests_total", "Requests (total)").inc(5, t=0.0)
        gauge = registry.gauge("latency_ms", 'Latency "quoted" help\nline two')
        gauge.set(1.25, t=0.0, quantile="p99", shard="0")
        gauge.set(0.5, t=0.0, quantile="p50", shard="0")
        registry.gauge("odd_values").set(float("nan"), t=0.0)
        return registry

    def test_round_trip_is_byte_identical(self):
        text = self.build().render()
        assert text.endswith("\n")
        assert render_families(parse_text(text)) == text

    def test_render_is_deterministic_across_registries(self):
        assert self.build().render() == self.build().render()
        first = json.dumps(self.build().to_dict(), sort_keys=True)
        assert first == json.dumps(self.build().to_dict(), sort_keys=True)

    def test_families_sorted_with_type_lines(self):
        text = self.build().render()
        names = [line.split()[2] for line in text.splitlines()
                 if line.startswith("# TYPE")]
        assert names == sorted(names)
        assert "# TYPE t_requests_total counter" in text
        assert "# TYPE t_latency_ms gauge" in text
        assert 't_latency_ms{quantile="p50",shard="0"} 0.5' in text

    def test_parser_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_text("not a metric line at all\n")
        with pytest.raises(ValueError):
            parse_text('m{unclosed="x\n')

    def test_content_type_is_prometheus_text(self):
        assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")


class TestEventLog:
    def test_emit_validates_kind(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event kind"):
            log.emit("nonsense")

    def test_ring_bounds_and_counts(self):
        log = EventLog(capacity=2)
        for shard in range(3):
            log.emit("shard_add", ts=float(shard), shard=shard)
        assert len(log) == 2 and log.emitted == 3
        assert [e.fields["shard"] for e in log.events()] == [1, 2]
        assert log.counts() == {"shard_add": 2}

    def test_jsonl_sink_and_dump(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        log = EventLog(path=str(sink))
        log.emit("cache_evict", ts=1.0, model_id="m0", reason="capacity")
        log.close()
        (line,) = sink.read_text().splitlines()
        assert json.loads(line) == {
            "kind": "cache_evict", "model_id": "m0",
            "reason": "capacity", "ts": 1.0,
        }
        dump = tmp_path / "dump.jsonl"
        assert log.dump_jsonl(str(dump)) == 1
        assert dump.read_text() == line + "\n"

    def test_module_emit_is_noop_until_installed(self):
        assert events_module.emit("retry", method="predict") is None
        with event_log() as log:
            assert get_event_log() is log
            events_module.emit("retry", method="predict", attempt=1)
            assert [e.kind for e in log.events()] == ["retry"]
        assert get_event_log() is None

    def test_subscribers_see_every_event(self):
        log = EventLog()
        seen = []
        log.subscribe(lambda event: seen.append(event.kind))
        log.emit("shard_kill", shard=1)
        log.emit("fault", action="kill_shard")
        assert seen == ["shard_kill", "fault"]


class TestSLOMonitor:
    def prime(self, values, metric="queue_pending"):
        registry = MetricsRegistry()
        gauge = registry.gauge(metric)
        for t, v in enumerate(values):
            gauge.set(float(v), t=float(t))
        return registry

    def test_for_samples_debounce_and_resolve(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_pending")
        monitor = SLOMonitor(
            registry, (queue_depth_sustained(depth=10.0, for_samples=2),)
        )
        gauge.set(50.0, t=0.0)
        assert monitor.evaluate(now=0.0) == []  # one hot sample: debounced
        gauge.set(60.0, t=1.0)
        (fired,) = monitor.evaluate(now=1.0)
        assert fired.state == "firing" and fired.value == 60.0
        assert monitor.evaluate(now=1.5) == []  # still firing: no re-fire
        assert [a.rule for a in monitor.active()] == ["queue-depth-sustained"]
        gauge.set(0.0, t=2.0)
        (resolved,) = monitor.evaluate(now=2.0)
        assert resolved.state == "resolved"
        assert monitor.active() == [] and monitor.fired == 1

    def test_label_filter_selects_the_p99_series(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("latency_ms")
        monitor = SLOMonitor(registry, (p99_over(100.0, for_samples=1),))
        gauge.set(500.0, t=0.0, quantile="p50")  # hot, but not the p99 series
        assert monitor.evaluate(now=0.0) == []
        gauge.set(150.0, t=1.0, quantile="p99")
        (alert,) = monitor.evaluate(now=1.0)
        assert dict(alert.labels) == {"quantile": "p99"}

    def test_alerts_land_in_the_event_log(self):
        registry = MetricsRegistry()
        log = EventLog()
        monitor = SLOMonitor(
            registry, (rejection_burn_rate(0.05),), event_log=log
        )
        registry.gauge("error_burn_rate").set(0.5, t=0.0)
        monitor.evaluate(now=0.0)
        (event,) = log.events("alert")
        assert event.fields["rule"] == "rejection-burn-rate"
        assert event.fields["state"] == "firing"

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="unknown op"):
            p99_over(1.0).__class__(name="x", metric="m", op="!", threshold=1.0)
        with pytest.raises(ValueError, match="for_samples"):
            queue_depth_sustained(for_samples=0)

    def test_default_rules_cover_the_three_shapes(self):
        names = {rule.name for rule in default_rules()}
        assert names == {
            "p99-over-threshold", "rejection-burn-rate", "queue-depth-sustained",
        }


class TestStatsSchemaValueGuard:
    """Satellite: assert_stats_schema rejects NaN/negative telemetry values."""

    def test_valid_stats_pass(self):
        assert_stats_schema(fake_stats())

    def test_nan_latency_rejected(self):
        stats = fake_stats()
        stats["latency"]["p99_ms"] = float("nan")
        with pytest.raises(AssertionError, match="not finite"):
            assert_stats_schema(stats)

    def test_infinite_queue_rejected(self):
        stats = fake_stats()
        stats["queue"]["max_depth"] = float("inf")
        with pytest.raises(AssertionError, match="not finite"):
            assert_stats_schema(stats)

    def test_negative_queue_depth_rejected(self):
        stats = fake_stats()
        stats["queue"]["pending"] = -1
        with pytest.raises(AssertionError, match="negative"):
            assert_stats_schema(stats)

    def test_facade_stats_satisfy_the_value_guard(self, rng):
        registry, model_ids = synthetic_fleet(tenants=2, seed=0)
        facade = LocalBackend(PersonalizationService(registry=registry))
        facade.predict(PredictRequest(model_ids[0], fleet_inputs(rng)))
        assert_stats_schema(facade.stats())


class _FakeTarget:
    def __init__(self, snapshots):
        self.snapshots = list(snapshots)
        self.calls = 0

    def stats(self):
        self.calls += 1
        if not self.snapshots:
            raise RuntimeError("exhausted")
        return self.snapshots.pop(0)


class TestRecordSampleAndPoller:
    def test_record_sample_maps_the_unified_schema(self):
        registry = MetricsRegistry()
        record_sample(registry, fake_stats(count=10, shards=2), now=0.0)
        record_sample(
            registry, fake_stats(count=16, failed=2, shards=2), now=1.0
        )
        assert registry.series("requests_total").values() == [10.0, 16.0]
        assert registry.series("errors_total", kind="failed").values() == [0.0, 2.0]
        assert registry.series("latency_ms", quantile="p99").last()[1] == 5.0
        assert registry.series("shards").last()[1] == 2.0
        # Burn rate is per-interval: 2 bad of 8 outcomes this sample.
        assert registry.series("error_burn_rate").values() == [0.0, 0.25]

    def test_burn_rate_ignores_preattach_history(self):
        registry = MetricsRegistry()
        # First-ever sample already carries failures: baseline, not a spike.
        record_sample(registry, fake_stats(count=100, failed=50), now=0.0)
        assert registry.series("error_burn_rate").values() == [0.0]

    def test_sample_survives_stats_failures(self):
        target = _FakeTarget([fake_stats()])
        poller = TelemetryPoller(target, interval_s=10.0)
        assert poller.sample(now=0.0) is not None
        assert poller.sample(now=1.0) is None  # target raised: recorded, not fatal
        assert poller.samples == 1 and poller.poll_errors == 1

    def test_start_takes_a_priming_baseline_sample(self):
        target = _FakeTarget([fake_stats(count=4), fake_stats(count=9, failed=1)])
        poller = TelemetryPoller(target, interval_s=60.0)
        poller.start()
        try:
            assert poller.samples == 1  # synchronous priming sample
        finally:
            poller.stop(final_sample=True)
        assert poller.samples == 2
        # Thanks to the baseline, the final sample's deltas are honest.
        burn = poller.registry.series("error_burn_rate").values()
        assert burn == [0.0, pytest.approx(1.0 / 6.0)]

    def test_exposition_scrape_mode_samples(self):
        poller = TelemetryPoller(_FakeTarget([fake_stats()]), interval_s=10.0)
        text = poller.exposition(sample=True)
        assert poller.samples == 1
        assert render_families(parse_text(text)) == text

    def test_target_must_expose_stats(self):
        with pytest.raises(TypeError, match="stats"):
            TelemetryPoller(object())

    def test_deterministic_exposition_is_byte_stable(self):
        """Acceptance: same (stats, t) sequence -> identical /metrics bytes."""
        def run():
            poller = TelemetryPoller(
                _FakeTarget(
                    [fake_stats(count=5), fake_stats(count=9, failed=1, pending=3)]
                ),
                interval_s=10.0,
            )
            poller.sample(now=100.0)
            poller.sample(now=101.0)
            return poller.exposition()

        assert run() == run()


def _service_facade(registry):
    return LocalBackend(PersonalizationService(registry=registry)), None


def _threaded_facade(registry):
    cluster = ClusterService(
        ClusterConfig(shards=2, workers="threaded"), registry=registry
    )
    return ClusterBackend(cluster), cluster


def _process_facade(registry):
    cluster = ClusterService(
        ClusterConfig(shards=2, workers="process"), registry=registry
    )
    return ClusterBackend(cluster), cluster


def _gateway_facade(registry):
    cluster = ClusterService(
        ClusterConfig(shards=2, workers="threaded"), registry=registry
    )
    return Gateway(ClusterBackend(cluster)), cluster


@pytest.mark.parametrize(
    "build",
    [_service_facade, _threaded_facade, _process_facade, _gateway_facade],
    ids=["service", "cluster-threaded", "cluster-process", "gateway"],
)
class TestFacadeSampling:
    """Satellite: counter monotonicity + gauge consistency on every facade."""

    def drive(self, facade, model_id, rng):
        if isinstance(facade, Gateway):
            request = PredictRequest(model_id, fleet_inputs(rng))
            envelope = ApiRequest(method="predict", payload=request.to_dict())
            assert facade.handle(envelope).ok
        else:
            facade.predict(PredictRequest(model_id, fleet_inputs(rng)))

    def test_counters_monotonic_and_gauges_consistent(self, build, rng):
        fleet, model_ids = synthetic_fleet(tenants=2, seed=0)
        facade, cluster = build(fleet)
        try:
            poller = TelemetryPoller(facade, interval_s=60.0)
            tick = 0.0
            for round_ in range(3):
                self.drive(facade, model_ids[round_ % len(model_ids)], rng)
                assert poller.sample(now=tick) is not None
                tick += 1.0
            registry = poller.registry
            for metric in registry.metrics():
                if metric.kind != "counter":
                    continue
                for _, ts in metric.all_series():
                    values = ts.values()
                    assert values == sorted(values), metric.name
            stats = facade.stats()
            assert_stats_schema(stats)
            # Gauge consistency: the latest sampled point mirrors the live
            # stats the facade reports right now (nothing ran in between).
            assert registry.series("requests_total").last()[1] == pytest.approx(
                stats["latency"]["count"]
            )
            assert registry.series("cache_hit_rate").last()[1] == pytest.approx(
                stats["cache"]["hit_rate"]
            )
            assert registry.series("queue_pending").last()[1] == pytest.approx(
                stats["queue"]["pending"]
            )
        finally:
            if cluster is not None:
                cluster.shutdown()


class TestClusterEventSeams:
    def test_shard_lifecycle_and_eviction_events(self, rng):
        fleet, model_ids = synthetic_fleet(tenants=4, seed=0)
        with event_log() as log:
            with ClusterService(
                ClusterConfig(shards=2, cache_capacity=1), registry=fleet
            ) as cluster:
                assert len(log.events("shard_add")) == 2
                for model_id in model_ids[:3]:
                    cluster.submit(
                        PredictRequest(model_id, fleet_inputs(rng))
                    ).result(30.0)
                assert log.events("cache_evict"), "capacity evictions missing"
                victim = cluster.shard_ids()[1]
                cluster.kill_shard(victim)
                assert log.events("shard_kill")[0].fields["shard"] == victim
                cluster.remove_shard(victim)
                assert log.events("shard_drain")[0].fields["shard"] == victim

    def test_admission_reject_event_on_high_water(self, rng):
        fleet, model_ids = synthetic_fleet(tenants=2, seed=0)
        with event_log() as log:
            with ClusterService(
                ClusterConfig(shards=1, high_water=1, max_pending=8),
                registry=fleet,
            ) as cluster:
                shard_id = cluster.shard_ids()[0]
                # Stall dispatch so later submits observe a standing queue.
                cluster.worker(shard_id).chaos_delay_s = 0.2
                futures = [
                    cluster.submit(PredictRequest(model_ids[0], fleet_inputs(rng)))
                    for _ in range(4)
                ]
                for future in futures:
                    future.result(30.0)
                cluster.worker(shard_id).chaos_delay_s = 0.0
        events = log.events("admission_reject")
        assert events, "no admission_reject event under backlog"
        assert events[0].fields["reason"] == "high_water"
        assert events[0].fields["source"] == "cluster"


class TestGatewayRoutes:
    def test_metrics_and_statsz_over_http(self, rng):
        fleet, model_ids = synthetic_fleet(tenants=2, seed=0)
        with ClusterService(ClusterConfig(shards=2), registry=fleet) as cluster:
            gateway = Gateway(ClusterBackend(cluster))
            request = PredictRequest(model_ids[0], fleet_inputs(rng))
            assert gateway.handle(
                ApiRequest(method="predict", payload=request.to_dict())
            ).ok
            with serve_http(gateway) as server:
                host, port = server.server_address[:2]
                base = f"http://{host}:{port}"
                with urllib.request.urlopen(base + "/metrics") as response:
                    assert response.headers["Content-Type"] == CONTENT_TYPE
                    text = response.read().decode("utf-8")
                assert render_families(parse_text(text)) == text
                assert "repro_requests_total" in text
                with urllib.request.urlopen(base + "/statsz") as response:
                    assert response.headers["Content-Type"] == "application/json"
                    stats = json.loads(response.read().decode("utf-8"))
                assert_stats_schema(stats)
                assert stats["latency"]["count"] >= 1
                # /healthz rides the same route table, unchanged.
                with urllib.request.urlopen(base + "/healthz") as response:
                    health = json.loads(response.read().decode("utf-8"))
                assert health["ok"] and health["payload"]["status"] == "ok"

    def test_unknown_get_lists_routes(self, rng):
        fleet, _ = synthetic_fleet(tenants=2, seed=0)
        with ClusterService(ClusterConfig(shards=1), registry=fleet) as cluster:
            gateway = Gateway(ClusterBackend(cluster))
            with serve_http(gateway) as server:
                host, port = server.server_address[:2]
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(f"http://{host}:{port}/nope")
                body = json.loads(excinfo.value.read().decode("utf-8"))
                assert body["error"]["code"] == "INVALID_ARGUMENT"
                assert "/metrics" in body["error"]["message"]
                assert "/statsz" in body["error"]["message"]

    def test_loopback_exposition_matches_http_bytes(self, rng):
        """The poller's exposition() is the socket-free /metrics equivalent."""
        fleet, model_ids = synthetic_fleet(tenants=2, seed=0)
        with ClusterService(ClusterConfig(shards=1), registry=fleet) as cluster:
            gateway = Gateway(ClusterBackend(cluster))
            poller = TelemetryPoller(gateway)
            with serve_http(gateway, metrics=poller) as server:
                host, port = server.server_address[:2]
                with urllib.request.urlopen(
                    f"http://{host}:{port}/metrics"
                ) as response:
                    scraped = response.read().decode("utf-8")
                assert scraped == poller.exposition()  # no re-sample: same bytes


class TestLoadgenMonitorIntegration:
    def run(self, scenario):
        from repro.experiments.loadgen_cli import LoadgenConfig, run_loadgen

        config = LoadgenConfig(
            scenario=scenario, shards=2, smoke=True, monitor=True,
            time_scale=0.25, seed=0,
        )
        report, _ = run_loadgen(config)
        return report

    def test_shard_failure_fires_the_burn_rate_alert(self):
        report = self.run("shard-failure")
        summary = report.metrics_summary
        assert summary is not None and summary["alerts_fired"] >= 1
        rules = {a["rule"] for a in summary["alerts"] if a["state"] == "firing"}
        assert "rejection-burn-rate" in rules
        kinds = set(summary["event_counts"])
        assert {"shard_kill", "fault"} <= kinds
        assert "metrics:" in report.render()
        assert report.to_dict(timing=True)["slo"]["metrics"] is summary
        # The exposition artifact round-trips like any scrape.
        exposition = report.monitor_artifacts["exposition"]
        assert render_families(parse_text(exposition)) == exposition
        assert get_event_log() is None  # the run restored the global seam

    def test_steady_scenario_stays_silent(self):
        report = self.run("steady-uniform")
        assert report.metrics_summary["alerts_fired"] == 0
        assert report.failed == 0 and report.rejected == 0

    def test_unmonitored_run_keeps_the_pre_metrics_shape(self):
        from repro.experiments.loadgen_cli import LoadgenConfig, run_loadgen

        report, _ = run_loadgen(
            LoadgenConfig(
                scenario="steady-uniform", shards=1, requests=4,
                time_scale=0.0, seed=0,
            )
        )
        assert report.metrics_summary is None
        assert "metrics" not in report.to_dict(timing=True)["slo"]


class TestMonitorCli:
    def test_in_process_payload_and_dashboard(self):
        from repro.experiments.monitor_cli import (
            MonitorConfig,
            render_dashboard,
            run_monitor,
        )

        payload = run_monitor(
            MonitorConfig(
                scenario="shard-failure", shards=2, smoke=True,
                time_scale=0.25, seed=0,
            )
        )
        assert payload["monitor"]["fired"] >= 1
        assert payload["samples"] >= 2
        assert any(e["kind"] == "shard_kill" for e in payload["events"])
        dashboard = render_dashboard(payload)
        assert "repro_error_burn_rate" in dashboard
        assert "rejection-burn-rate" in dashboard

    def test_scrape_mode_against_a_live_gateway(self, rng):
        from repro.experiments.monitor_cli import MonitorConfig, run_monitor

        fleet, model_ids = synthetic_fleet(tenants=2, seed=0)
        with ClusterService(ClusterConfig(shards=2), registry=fleet) as cluster:
            gateway = Gateway(ClusterBackend(cluster))
            request = PredictRequest(model_ids[0], fleet_inputs(rng))
            assert gateway.handle(
                ApiRequest(method="predict", payload=request.to_dict())
            ).ok
            with serve_http(gateway) as server:
                host, port = server.server_address[:2]
                payload = run_monitor(
                    MonitorConfig(
                        url=f"http://{host}:{port}",
                        ticks=2,
                        poll_interval_s=0.01,
                    )
                )
        assert payload["scrapes"] == 2
        assert payload["monitor"]["fired"] == 0
        series = payload["metrics"]["repro_requests_total"]["series"]
        assert series[0]["value"] >= 1.0

    def test_config_validation(self):
        from repro.experiments.monitor_cli import MonitorConfig

        with pytest.raises(ValueError, match="poll_interval_s"):
            MonitorConfig(poll_interval_s=0.0)
        with pytest.raises(ValueError, match="ticks"):
            MonitorConfig(ticks=0)

    def test_cli_lists_and_runs_monitor(self, capsys, tmp_path):
        from repro.experiments.cli import ALL_COMMANDS, main

        assert "monitor" in ALL_COMMANDS
        out = tmp_path / "plane.json"
        code = main(
            [
                "monitor", "--scenario", "steady-uniform", "--shards", "2",
                "--smoke", "--time-scale", "0.25", "--metrics-json", str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "metrics plane" in printed and "alerts:" in printed
        payload = json.loads(out.read_text())
        assert payload["monitor"]["fired"] == 0
        assert "repro_requests_total" in payload["metrics"]
