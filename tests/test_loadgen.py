"""Tests for the scenario workload generator (:mod:`repro.loadgen`)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterService
from repro.loadgen import (
    ARRIVALS,
    POPULARITIES,
    SCENARIOS,
    BurstyOnOff,
    ClosedLoop,
    ConstantRate,
    DiurnalRamp,
    DriverConfig,
    FaultEvent,
    HotSetChurn,
    LoadDriver,
    PoissonArrivals,
    RequestOutcome,
    SLOReport,
    UniformPopularity,
    ZipfPopularity,
    build_scenario,
    synthetic_fleet,
)
from repro.loadgen.report import STATUS_FAILED, STATUS_HUNG, STATUS_OK, STATUS_REJECTED
from repro.serve import PersonalizationService, ServiceConfig


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestArrivals:
    @pytest.mark.parametrize("kind", sorted(ARRIVALS))
    def test_monotone_and_deterministic(self, kind):
        process = ARRIVALS[kind]()
        a = process.times(40, _rng())
        b = ARRIVALS[kind]().times(40, _rng())
        assert len(a) == 40
        assert a == b  # same params + same seeded rng -> same offsets
        assert all(y >= x for x, y in zip(a, a[1:]))
        assert a[0] >= 0.0

    def test_constant_rate_spacing(self):
        times = ConstantRate(rate=100.0).times(5, _rng())
        assert times == pytest.approx([0.0, 0.01, 0.02, 0.03, 0.04])

    def test_poisson_mean_gap_tracks_rate(self):
        times = PoissonArrivals(rate=1000.0).times(4000, _rng())
        mean_gap = times[-1] / (len(times) - 1)
        assert mean_gap == pytest.approx(1e-3, rel=0.1)

    def test_bursty_groups_and_idles(self):
        times = BurstyOnOff(burst_size=4, burst_rate=1000.0, idle_s=0.1).times(8, _rng())
        in_burst = times[3] - times[0]
        between = times[4] - times[3]
        assert in_burst == pytest.approx(0.003)
        assert between == pytest.approx(0.1 + 0.001)

    def test_diurnal_rate_peaks_mid_period(self):
        ramp = DiurnalRamp(base_rate=100.0, peak_rate=1000.0, period_s=1.0)
        assert ramp.rate_at(0.0) == pytest.approx(100.0)
        assert ramp.rate_at(0.5) == pytest.approx(1000.0)
        times = ramp.times(400, _rng())  # enough arrivals to cross the peak
        gaps = np.diff(times)
        assert gaps.min() < 1.5 / 1000.0 < 1.0 / 100.0 < gaps.max() * 1.01

    def test_closed_loop_has_no_timestamps(self):
        process = ClosedLoop(concurrency=4)
        assert process.closed_loop
        assert process.times(3, _rng()) == [0.0, 0.0, 0.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantRate(rate=0.0)
        with pytest.raises(ValueError):
            BurstyOnOff(burst_size=0)
        with pytest.raises(ValueError):
            DiurnalRamp(base_rate=200.0, peak_rate=100.0)
        with pytest.raises(ValueError):
            ClosedLoop(concurrency=0)


class TestPopularity:
    @pytest.mark.parametrize("kind", sorted(POPULARITIES))
    def test_range_and_determinism(self, kind):
        model = POPULARITIES[kind]()
        a = model.sequence(200, 7, _rng())
        b = POPULARITIES[kind]().sequence(200, 7, _rng())
        assert a == b
        assert all(0 <= t < 7 for t in a)

    def test_uniform_spreads_traffic(self):
        counts = np.bincount(UniformPopularity().sequence(4000, 4, _rng()), minlength=4)
        assert counts.min() > 0.15 * 4000

    def test_zipf_concentrates_on_the_head(self):
        picks = ZipfPopularity(alpha=1.2).sequence(4000, 8, _rng())
        counts = np.bincount(picks, minlength=8)
        # The hottest tenant takes far more than the uniform share...
        assert counts.max() > 2.0 * 4000 / 8
        # ...but nobody is starved into nonexistence by construction.
        assert counts.sum() == 4000

    def test_hot_set_rotates(self):
        model = HotSetChurn(hot_fraction=0.25, hot_mass=1.0, churn_every=50)
        picks = model.sequence(100, 8, _rng())
        first, second = set(picks[:50]), set(picks[50:])
        assert len(first) <= 2 and len(second) <= 2  # hot set of 2 with mass 1.0
        assert first != second  # the churn actually rotated

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfPopularity(alpha=0.0)
        with pytest.raises(ValueError):
            HotSetChurn(hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotSetChurn(churn_every=0)


class TestScenario:
    def test_all_presets_build_and_describe(self):
        for name in SCENARIOS:
            scenario = build_scenario(name)
            assert scenario.name == name
            payload = scenario.to_dict()
            assert payload["arrivals"]["kind"] in ARRIVALS
            assert payload["popularity"]["kind"] in POPULARITIES

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            build_scenario("tsunami")

    def test_synthesis_is_deterministic(self):
        ids = [f"tenant-{i}" for i in range(5)]
        a = build_scenario("poisson-zipf").synthesize(ids, seed=3)
        b = build_scenario("poisson-zipf").synthesize(ids, seed=3)
        c = build_scenario("poisson-zipf").synthesize(ids, seed=4)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()
        for x, y in zip(a.scheduled, b.scheduled):
            assert x.at == y.at and x.tenant == y.tenant
            np.testing.assert_array_equal(x.request.inputs, y.request.inputs)

    def test_plan_accounts_for_every_tenant_and_request(self):
        ids = [f"tenant-{i}" for i in range(4)]
        workload = build_scenario("zipf-burst").synthesize(ids, seed=0)
        plan = workload.plan_dict()
        assert plan["requests"] == len(workload) == 64
        assert set(plan["per_tenant"]) == set(ids)
        assert sum(plan["per_tenant"].values()) == 64
        assert plan["virtual_duration_s"] > 0

    def test_resizing_rescales_fault_schedule(self):
        scenario = build_scenario("shard-failure", requests=12)  # preset is 48
        assert scenario.requests == 12
        assert [f.at_request for f in scenario.faults] == [4, 8]  # 16,32 scaled by 1/4

    def test_resizing_validates_counts(self):
        with pytest.raises(ValueError):
            build_scenario("shard-failure", requests=0)
        with pytest.raises(ValueError):
            build_scenario("steady-uniform", request_batch=0)

    def test_fault_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(at_request=0, action="meteor-strike")
        with pytest.raises(ValueError):
            FaultEvent(at_request=-1, action="kill_shard")
        with pytest.raises(ValueError):
            FaultEvent(at_request=0, action="slow_shard", delay_s=-0.1)


class TestSyntheticFleet:
    def test_fleet_is_reproducible_and_distinct(self):
        registry_a, ids_a = synthetic_fleet(tenants=3, seed=0)
        registry_b, ids_b = synthetic_fleet(tenants=3, seed=0)
        assert ids_a == ids_b == ["tenant-0", "tenant-1", "tenant-2"]
        batch = _rng().normal(size=(1, 3, 12, 12))
        logits_a = [registry_a.build_engine(i).predict(batch) for i in ids_a]
        logits_b = [registry_b.build_engine(i).predict(batch) for i in ids_b]
        for a, b in zip(logits_a, logits_b):
            np.testing.assert_array_equal(a, b)
        # Different tenants are genuinely different models.
        assert not np.array_equal(logits_a[0], logits_a[1])


class TestSLOReport:
    def _report(self):
        report = SLOReport(
            scenario={"name": "synthetic", "faults": []},
            plan={"digest": "d", "tenants": 2, "requests": 8},
            shards=2,
            per_shard_planned={"0": 6, "1": 2},
        )
        for i, latency in enumerate((0.010, 0.020, 0.030, 0.040, 0.050)):
            report.record(RequestOutcome(f"r{i}", "tenant-0", STATUS_OK, latency))
        report.record(RequestOutcome("r5", "tenant-1", STATUS_REJECTED, 0.001))
        report.record(RequestOutcome("r6", "tenant-1", STATUS_FAILED, 0.002, error="Boom"))
        report.record(RequestOutcome("r7", "tenant-1", STATUS_HUNG))
        report.elapsed_s = 0.5
        return report

    def test_counters_and_rates(self):
        report = self._report()
        assert (report.completed, report.rejected, report.failed, report.hung) == (5, 1, 1, 1)
        assert report.goodput_rps() == pytest.approx(10.0)
        assert report.offered_rps() == pytest.approx(16.0)

    def test_latency_percentiles_over_completed_only(self):
        latency = self._report().latency_summary()
        assert latency["count"] == 5
        assert latency["p50_ms"] == pytest.approx(30.0)
        assert latency["max_ms"] == pytest.approx(50.0)

    def test_imbalance_is_max_over_mean(self):
        report = self._report()
        assert report.imbalance({"0": 6, "1": 2}) == pytest.approx(6 / 4)
        assert report.imbalance({}) == 0.0

    def test_payload_shape_and_timing_split(self):
        report = self._report()
        deterministic = report.to_dict(timing=False)
        assert "slo" not in deterministic
        assert deterministic["outcomes"]["completed"] == 5
        full = report.to_dict(timing=True)
        assert full["slo"]["rejection_rate"] == pytest.approx(1 / 8)
        assert {"p50_ms", "p95_ms", "p99_ms"} <= set(full["slo"]["latency"])

    def test_fault_scenarios_keep_outcomes_out_of_the_deterministic_face(self):
        report = SLOReport(
            scenario={"name": "chaos", "faults": [{"action": "kill_shard"}]},
            plan={"digest": "d", "tenants": 1, "requests": 1},
        )
        assert not report.deterministic_outcomes
        assert "outcomes" not in report.to_dict(timing=False)
        assert "outcomes" not in report.to_dict(timing=True)


class TestLoadDriver:
    def _cluster(self, registry, shards=2):
        return ClusterService(
            ClusterConfig(shards=shards, cache_capacity=2, max_pending=256),
            registry=registry,
        )

    def test_cluster_run_is_deterministic(self):
        """Acceptance criterion: same scenario + seed -> same bytes."""
        payloads = []
        for _ in range(2):
            registry, ids = synthetic_fleet(tenants=4, seed=0)
            workload = build_scenario("zipf-burst", requests=24).synthesize(ids, seed=0)
            with self._cluster(registry) as cluster:
                report = LoadDriver(cluster).run(workload)
            assert report.hung == 0 and report.completed == 24
            payloads.append(
                json.dumps(report.to_dict(timing=False), indent=2, sort_keys=True)
            )
        assert payloads[0] == payloads[1]

    def test_closed_loop_completes_everything(self):
        registry, ids = synthetic_fleet(tenants=3, seed=0)
        workload = build_scenario("closed-loop", requests=18).synthesize(ids, seed=0)
        assert workload.closed_loop and workload.concurrency == 8
        with self._cluster(registry) as cluster:
            report = LoadDriver(cluster).run(workload)
        assert report.completed == 18 and report.hung == 0

    def test_sync_driver_matches_cluster_predictions(self):
        """The same workload through both facades answers with the same bits."""
        registry, ids = synthetic_fleet(tenants=3, seed=0)
        workload = build_scenario("steady-uniform", requests=12).synthesize(ids, seed=0)
        single = PersonalizationService(ServiceConfig(cache_capacity=3), registry=registry)
        sync_report = LoadDriver(single, DriverConfig(time_scale=0.0)).run(workload)
        registry2, ids2 = synthetic_fleet(tenants=3, seed=0)
        workload2 = build_scenario("steady-uniform", requests=12).synthesize(ids2, seed=0)
        with self._cluster(registry2) as cluster:
            async_report = LoadDriver(cluster, DriverConfig(time_scale=0.0)).run(workload2)
        assert sync_report.completed == async_report.completed == 12
        assert sync_report.predictions_digest() == async_report.predictions_digest()

    def test_time_scale_zero_skips_pacing(self):
        registry, ids = synthetic_fleet(tenants=2, seed=0)
        workload = build_scenario("diurnal-ramp", requests=10).synthesize(ids, seed=0)
        with self._cluster(registry) as cluster:
            report = LoadDriver(cluster, DriverConfig(time_scale=0.0)).run(workload)
        # Unpaced replay finishes far inside the ~0.1s virtual duration.
        assert report.completed == 10
        assert report.elapsed_s < workload.virtual_duration_s + 1.0

    def test_faults_require_a_cluster(self):
        registry, ids = synthetic_fleet(tenants=2, seed=0)
        workload = build_scenario("shard-failure", requests=8).synthesize(ids, seed=0)
        single = PersonalizationService(ServiceConfig(), registry=registry)
        with pytest.raises(ValueError, match="ClusterService"):
            LoadDriver(single).run(workload)

    def test_per_shard_plan_covers_all_requests(self):
        registry, ids = synthetic_fleet(tenants=4, seed=0)
        workload = build_scenario("poisson-zipf", requests=20).synthesize(ids, seed=0)
        with self._cluster(registry, shards=3) as cluster:
            report = LoadDriver(cluster).run(workload)
        assert sum(report.per_shard_planned.values()) == 20
        assert set(report.per_shard_planned) == {"0", "1", "2"}
        payload = report.to_dict()
        assert payload["plan"]["planned_imbalance"] >= 1.0
        # Observed completions agree with the plan when nothing fails.
        assert report.observed_per_shard() == report.per_shard_planned

    def test_driver_config_validation(self):
        with pytest.raises(ValueError):
            DriverConfig(time_scale=-1.0)
        with pytest.raises(ValueError):
            DriverConfig(timeout_s=0.0)


class TestLoadgenCLI:
    def test_json_stdout_is_byte_stable(self, capsys):
        from repro.experiments.cli import main

        args = [
            "loadgen", "--scenario", "zipf-burst", "--shards", "2", "--seed", "0",
            "--loadgen-tenants", "3", "--loadgen-requests", "16", "--json",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["scenario"]["name"] == "zipf-burst"
        assert payload["outcomes"]["completed"] == 16
        assert payload["outcomes"]["hung"] == 0

    def test_measure_adds_slo_block_to_file(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "slo.json"
        args = [
            "loadgen", "--scenario", "steady-uniform", "--shards", "2", "--smoke",
            "--measure", "--json", str(out),
        ]
        assert main(args) == 0
        stdout = capsys.readouterr().out
        assert "scenario steady-uniform" in stdout
        payload = json.loads(out.read_text())
        assert "slo" in payload
        assert {"p50_ms", "p95_ms", "p99_ms"} <= set(payload["slo"]["latency"])
        assert "cluster" in payload["slo"]  # merged cluster percentiles attached

    def test_unknown_scenario_is_a_cli_error(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["loadgen", "--scenario", "meteor"])

    def test_shard_kill_scenario_needs_two_shards(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["loadgen", "--scenario", "shard-failure", "--shards", "1"])
        with pytest.raises(SystemExit):
            main(["loadgen", "--loadgen-requests", "0"])
