"""Parity tests: every sparse kernel on every backend vs. the masked GEMM.

The ``reference`` backend is the correctness oracle (bit-exact with the
pre-backend code); the ``fast`` backend must agree with both the oracle and
the dense ``masked_matmul`` reference to 1e-8 across randomized shapes, N:M
ratios and block sizes.  The suite also pins the engine, the backend
registry, the workspace cache and the dense-layer routing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import (
    Engine,
    FastBackend,
    active_backend,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.experiments import configure_backend
from repro.hw import workloads_from_engine, workloads_from_model
from repro.nn.models import build_model
from repro.nn.models.base import prunable_layers
from repro.sparsity import (
    BlockedEllpackFormat,
    CRISPFormat,
    CSRFormat,
    HybridSparsityConfig,
    blocked_ellpack_matmul,
    crisp_matmul,
    csr_matmul,
    hybrid_mask,
    masked_matmul,
)

BACKENDS = ["reference", "fast"]

#: Randomized (rows, cols) weight shapes, including block-unaligned ones.
SHAPES = [(32, 16), (24, 40), (64, 64), (17, 9), (40, 23), (128, 48)]


@pytest.fixture(autouse=True)
def _reference_backend_default():
    """Keep the global backend selection clean across tests."""
    previous = active_backend()
    yield
    set_backend(previous)


def random_sparse(rng, rows, cols, density=0.35):
    return rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)


def hybrid_weight(rng, rows, cols, n, m, block_size, keep=None):
    weight = rng.normal(size=(rows, cols))
    block_cols = -(-cols // block_size)
    keep = keep if keep is not None else max(1, block_cols // 2)
    mask, _ = hybrid_mask(
        np.abs(weight),
        HybridSparsityConfig(n, m, block_size),
        keep_blocks_per_row=min(keep, block_cols),
    )
    return weight * mask, mask


class TestRegistry:
    def test_both_backends_registered(self):
        assert {"reference", "fast"} <= set(available_backends())

    def test_get_backend_singleton(self):
        assert get_backend("fast") is get_backend("fast")

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_backend("turbo")

    def test_use_backend_scopes_selection(self):
        before = active_backend().name
        with use_backend("fast") as be:
            assert be.name == "fast"
            assert active_backend().name == "fast"
        assert active_backend().name == before

    def test_configure_backend_threads_through_experiments(self):
        previous = active_backend()
        try:
            assert configure_backend("fast") == "fast"
            assert active_backend().name == "fast"
        finally:
            set_backend(previous)

    def test_sparse_matmul_rejects_unknown_format(self):
        with pytest.raises(TypeError):
            get_backend("fast").sparse_matmul(object(), np.zeros((4, 2)))


class TestSparseKernelParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_csr_matches_masked_matmul(self, rng, backend, shape):
        rows, cols = shape
        weight = random_sparse(rng, rows, cols)
        acts = rng.normal(size=(rows, 6))
        fmt = CSRFormat.from_dense(weight)
        out = csr_matmul(fmt, acts, backend=backend)
        expected = masked_matmul(weight, (weight != 0).astype(float), acts)
        np.testing.assert_allclose(out, expected, atol=1e-8)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("block_size", [4, 8, 16])
    def test_blocked_ellpack_matches_masked_matmul(self, rng, backend, shape, block_size):
        rows, cols = shape
        weight = random_sparse(rng, rows, cols)
        acts = rng.normal(size=(rows, 5))
        fmt = BlockedEllpackFormat.from_dense(weight, block_size)
        out = blocked_ellpack_matmul(fmt, acts, backend=backend)
        expected = masked_matmul(weight, (weight != 0).astype(float), acts)
        np.testing.assert_allclose(out, expected, atol=1e-8)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("nm", [(1, 4), (2, 4), (2, 8), (4, 8)])
    @pytest.mark.parametrize("block_size", [8, 16])
    def test_crisp_matches_masked_matmul(self, rng, backend, nm, block_size):
        n, m = nm
        weight, mask = hybrid_weight(rng, 64, 32, n, m, block_size)
        acts = rng.normal(size=(64, 4))
        fmt = CRISPFormat.from_dense(weight, n, m, block_size)
        assert fmt.is_lossless
        out = crisp_matmul(fmt, acts, backend=backend)
        np.testing.assert_allclose(out, masked_matmul(weight, mask, acts), atol=1e-8)

    @pytest.mark.parametrize("kernel", ["csr", "blocked-ellpack", "crisp"])
    def test_fast_within_1e8_of_reference(self, rng, kernel):
        weight, _ = hybrid_weight(rng, 96, 48, 2, 4, 8)
        acts = rng.normal(size=(96, 7))
        if kernel == "csr":
            fmt = CSRFormat.from_dense(weight)
            ref = csr_matmul(fmt, acts, backend="reference")
            fast = csr_matmul(fmt, acts, backend="fast")
        elif kernel == "blocked-ellpack":
            fmt = BlockedEllpackFormat.from_dense(weight, 8)
            ref = blocked_ellpack_matmul(fmt, acts, backend="reference")
            fast = blocked_ellpack_matmul(fmt, acts, backend="fast")
        else:
            fmt = CRISPFormat.from_dense(weight, 2, 4, 8)
            ref = crisp_matmul(fmt, acts, backend="reference")
            fast = crisp_matmul(fmt, acts, backend="fast")
        np.testing.assert_allclose(fast, ref, atol=1e-8)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_activation_mismatch_raises_on_both_backends(self, rng, backend):
        fmt = CSRFormat.from_dense(random_sparse(rng, 8, 4))
        with pytest.raises(ValueError):
            csr_matmul(fmt, rng.normal(size=(9, 2)), backend=backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_weight(self, backend, rng):
        fmt = CSRFormat.from_dense(np.zeros((6, 4)))
        out = csr_matmul(fmt, rng.normal(size=(6, 3)), backend=backend)
        np.testing.assert_allclose(out, np.zeros((4, 3)))

    @given(
        nm=st.sampled_from([(1, 4), (2, 4), (3, 4), (2, 8)]),
        block_size=st.sampled_from([8, 16]),
        rows=st.integers(2, 6),
        cols=st.integers(1, 5),
        batch=st.integers(1, 6),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_all_formats_all_backends(self, nm, block_size, rows, cols, batch, seed):
        """Randomized shapes / N:M ratios / block sizes: every format on both
        backends reproduces the masked dense GEMM."""
        n, m = nm
        rng = np.random.default_rng(seed)
        rows, cols = rows * block_size, cols * block_size
        weight, mask = hybrid_weight(rng, rows, cols, n, m, block_size)
        acts = rng.normal(size=(rows, batch))
        expected = masked_matmul(weight, mask, acts)

        formats = [
            CSRFormat.from_dense(weight),
            BlockedEllpackFormat.from_dense(weight, block_size),
            CRISPFormat.from_dense(weight, n, m, block_size),
        ]
        for backend in BACKENDS:
            be = get_backend(backend)
            for fmt in formats:
                np.testing.assert_allclose(
                    be.sparse_matmul(fmt, acts), expected, atol=1e-8
                )


class TestDenseLayerParity:
    def test_model_forward_matches_across_backends(self, rng, tiny_resnet):
        x = rng.normal(size=(2, 3, 16, 16))
        tiny_resnet.eval()
        ref = tiny_resnet(x)
        with use_backend("fast"):
            fast = tiny_resnet(x)
        np.testing.assert_allclose(fast, ref, atol=1e-8)

    def test_training_step_matches_across_backends(self, rng, tiny_resnet):
        """Forward + backward in train mode is bit-identical on both backends
        (the fast backend only diverges on inference-only paths)."""
        x = rng.normal(size=(2, 3, 16, 16))
        tiny_resnet.train()
        ref = tiny_resnet(x)
        grads_ref = {}
        tiny_resnet.backward(np.ones_like(ref))
        for name, p in tiny_resnet.named_parameters():
            if p.grad is not None:
                grads_ref[name] = p.grad.copy()
        tiny_resnet.zero_grad()

        with use_backend("fast"):
            fast = tiny_resnet(x)
            tiny_resnet.backward(np.ones_like(fast))
        np.testing.assert_array_equal(fast, ref)
        for name, p in tiny_resnet.named_parameters():
            if name in grads_ref:
                np.testing.assert_array_equal(p.grad, grads_ref[name])

    def test_eval_mode_gradients_match_across_backends(self, rng, tiny_resnet):
        """Saliency estimation runs forward+backward in eval mode; convs that
        share an im2col shape key (any ResNet stage) must not alias the fast
        backend's workspace buffer in their backward caches."""
        x = rng.normal(size=(2, 3, 16, 16))
        tiny_resnet.eval()
        out = tiny_resnet(x)
        tiny_resnet.backward(np.ones_like(out))
        grads_ref = {
            name: p.grad.copy()
            for name, p in tiny_resnet.named_parameters()
            if p.grad is not None
        }
        tiny_resnet.zero_grad()

        with use_backend("fast"):
            out_fast = tiny_resnet(x)
            tiny_resnet.backward(np.ones_like(out_fast))
        np.testing.assert_allclose(out_fast, out, atol=1e-8)
        for name, p in tiny_resnet.named_parameters():
            if name in grads_ref:
                np.testing.assert_allclose(p.grad, grads_ref[name], atol=1e-8, err_msg=name)

    def test_eval_mode_depthwise_gradients_match_across_backends(self, rng, tiny_mobilenet):
        x = rng.normal(size=(2, 3, 16, 16))
        tiny_mobilenet.eval()
        out = tiny_mobilenet(x)
        tiny_mobilenet.backward(np.ones_like(out))
        grads_ref = {
            name: p.grad.copy()
            for name, p in tiny_mobilenet.named_parameters()
            if p.grad is not None
        }
        tiny_mobilenet.zero_grad()

        with use_backend("fast"):
            out_fast = tiny_mobilenet(x)
            tiny_mobilenet.backward(np.ones_like(out_fast))
        for name, p in tiny_mobilenet.named_parameters():
            if name in grads_ref:
                np.testing.assert_allclose(p.grad, grads_ref[name], atol=1e-8, err_msg=name)

    def test_workspace_cache_reuses_buffers(self, rng):
        backend = FastBackend()
        x = rng.normal(size=(2, 3, 8, 8))
        first = backend.im2col(x, 3, 3, 1, 1, training=False)
        second = backend.im2col(x, 3, 3, 1, 1, training=False)
        assert first.base is second.base  # same underlying workspace buffer
        stats = backend.workspace_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        backend.clear_workspace()
        assert backend.workspace_stats()["buffers"] == 0

    def test_training_im2col_never_shares_workspace(self, rng):
        backend = FastBackend()
        x = rng.normal(size=(2, 3, 8, 8))
        first = backend.im2col(x, 3, 3, 1, 1, training=True)
        second = backend.im2col(x, 3, 3, 1, 1, training=True)
        assert first.base is not second.base
        assert backend.workspace_stats()["buffers"] == 0


def _pruned_model(rng, n=2, m=4, block_size=8):
    model = build_model("resnet_tiny", num_classes=5, input_size=16, seed=0)
    for layer in prunable_layers(model).values():
        w2d = layer.reshaped_weight()
        block_cols = -(-w2d.shape[1] // block_size)
        mask, _ = hybrid_mask(
            np.abs(w2d),
            HybridSparsityConfig(n, m, block_size),
            keep_blocks_per_row=max(1, block_cols - 1),
        )
        layer.set_reshaped_mask(mask)
    return model


class TestEngine:
    @pytest.mark.parametrize("weight_format", ["dense", "csr", "blocked-ellpack", "crisp"])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_engine_matches_model_forward(self, rng, weight_format, backend):
        model = _pruned_model(rng)
        x = rng.normal(size=(3, 3, 16, 16))
        model.eval()
        expected = model(x)
        engine = Engine(
            model, backend=backend, weight_format=weight_format, n=2, m=4, block_size=8
        )
        try:
            assert engine.is_lossless
            np.testing.assert_allclose(engine.predict(x), expected, atol=1e-8)
        finally:
            engine.detach()
        # Detaching restores the original forward exactly.
        np.testing.assert_array_equal(model(x), expected)

    def test_predict_many_matches_single_dispatch(self, rng):
        model = _pruned_model(rng)
        engine = Engine(model, backend="fast", weight_format="crisp", n=2, m=4, block_size=8)
        try:
            batches = [rng.normal(size=(s, 3, 16, 16)) for s in (1, 3, 2)]
            fused = engine.predict_many(batches)
            assert [o.shape[0] for o in fused] == [1, 3, 2]
            for batch, logits in zip(batches, fused):
                np.testing.assert_allclose(logits, engine.predict(batch), atol=1e-8)
        finally:
            engine.detach()

    def test_predict_many_empty(self, rng):
        model = _pruned_model(rng)
        with Engine(model, backend="fast", weight_format="dense") as engine:
            assert engine.predict_many([]) == []

    def test_engine_context_manager_detaches(self, rng):
        model = _pruned_model(rng)
        with Engine(model, weight_format="dense", attach=False) as engine:
            assert engine.attached
        assert not engine.attached

    def test_engine_rejects_unknown_format(self, rng):
        model = _pruned_model(rng)
        with pytest.raises(ValueError):
            Engine(model, weight_format="coo")

    def test_engine_preserves_eval_training_flag(self, rng):
        model = _pruned_model(rng)
        engine = Engine(model, weight_format="dense")
        try:
            model.train(True)
            engine.predict(rng.normal(size=(1, 3, 16, 16)))
            assert model.training
        finally:
            engine.detach()

    def test_engine_stats_and_storage(self, rng):
        model = _pruned_model(rng)
        engine = Engine(model, backend="fast", weight_format="crisp", n=2, m=4, block_size=8)
        try:
            stats = engine.stats()
            assert stats["backend"] == "fast"
            assert stats["weight_format"] == "crisp"
            assert stats["layers"] == len(prunable_layers(model))
            assert stats["total_weight_bits"] > 0
            summaries = engine.format_summaries()
            assert set(summaries) == set(prunable_layers(model))
        finally:
            engine.detach()

    def test_refresh_formats_tracks_weight_updates(self, rng):
        model = _pruned_model(rng)
        engine = Engine(model, backend="fast", weight_format="dense")
        try:
            x = rng.normal(size=(2, 3, 16, 16))
            before = engine.predict(x)
            head = list(prunable_layers(model).values())[-1]
            head.weight.data *= 2.0
            head.weight.apply_mask()
            engine.refresh_formats()
            engine.detach()
            engine.attach()
            after = engine.predict(x)
            assert not np.allclose(before, after)
            model.eval()
            np.testing.assert_allclose(after, model(x), atol=1e-8)
        finally:
            engine.detach()

    def test_workloads_from_engine(self, rng):
        model = _pruned_model(rng)
        engine = Engine(model, backend="fast", weight_format="crisp", n=2, m=4, block_size=8)
        try:
            workloads = workloads_from_engine(engine, batch=2)
        finally:
            engine.detach()
        expected = workloads_from_model(model, batch=2, n=2, m=4, block_size=8)
        assert [w.name for w in workloads] == [w.name for w in expected]
        for got, want in zip(workloads, expected):
            assert got.n == 2 and got.m == 4
            assert got.block_keep_ratio == pytest.approx(want.block_keep_ratio)
            assert got.weight_density == pytest.approx(want.weight_density)
