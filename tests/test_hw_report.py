"""Tests for the accelerator comparison report (the Fig. 8 harness)."""

import pytest

from repro.hw import (
    CrispSTC,
    DenseAccelerator,
    NvidiaSTC,
    compare_accelerators,
    default_accelerators,
    resnet50_reference_layers,
)


@pytest.fixture
def report():
    workloads = resnet50_reference_layers(n=2, m=4, block_keep_ratio=0.25)
    return compare_accelerators(workloads)


class TestDefaultAccelerators:
    def test_lineup(self):
        names = [acc.name for acc in default_accelerators()]
        assert names[:3] == ["dense", "nvidia-stc", "dstc"]
        assert "crisp-stc-b64" in names

    def test_custom_block_sizes(self):
        names = [acc.name for acc in default_accelerators(block_sizes=(8,))]
        assert "crisp-stc-b8" in names and "crisp-stc-b64" not in names


class TestComparisonReport:
    def test_layers_and_accelerators_present(self, report):
        assert len(report.layers) == 9
        assert set(report.accelerator_names) == {
            "dense", "nvidia-stc", "dstc", "crisp-stc-b16", "crisp-stc-b32", "crisp-stc-b64",
        }

    def test_dense_baseline_ratios_are_one(self, report):
        assert report.overall_speedup("dense") == pytest.approx(1.0)
        assert report.overall_energy_efficiency("dense") == pytest.approx(1.0)

    def test_overall_consistency_with_totals(self, report):
        speedup = report.overall_speedup("crisp-stc-b64")
        assert speedup == pytest.approx(
            report.total_cycles("dense") / report.total_cycles("crisp-stc-b64")
        )

    def test_layer_speedups_keys(self, report):
        speedups = report.layer_speedups("crisp-stc-b64")
        assert set(speedups) == {layer.layer for layer in report.layers}
        assert all(value > 1.0 for value in speedups.values())

    def test_rows_structure(self, report):
        rows = report.rows()
        assert len(rows) == 9 * 6
        sample = rows[0]
        assert {"layer", "accelerator", "cycles", "energy_uj", "speedup_vs_dense",
                "energy_eff_vs_dense", "bound"} <= set(sample)

    def test_headline_orderings(self, report):
        """The paper's Fig. 8 ordering: CRISP > DSTC and NVIDIA, NVIDIA <= 2x."""
        crisp = report.overall_speedup("crisp-stc-b64")
        nvidia = report.overall_speedup("nvidia-stc")
        dstc = report.overall_speedup("dstc")
        assert crisp > dstc
        assert crisp > nvidia
        assert nvidia <= 2.0 + 1e-9
        assert report.overall_energy_efficiency("crisp-stc-b64") > report.overall_energy_efficiency("nvidia-stc")

    def test_explicit_accelerator_list(self):
        workloads = resnet50_reference_layers()
        report = compare_accelerators(workloads, [DenseAccelerator(), NvidiaSTC()])
        assert set(report.accelerator_names) == {"dense", "nvidia-stc"}

    def test_block_size_ordering(self, report):
        assert (
            report.overall_speedup("crisp-stc-b64")
            >= report.overall_speedup("crisp-stc-b32")
            >= report.overall_speedup("crisp-stc-b16")
        )
