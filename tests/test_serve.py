"""Tests for the multi-tenant serving layer (:mod:`repro.serve`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import Engine
from repro.experiments.common import TINY_SCALE, make_service
from repro.nn.models import build_model
from repro.nn.models.base import prunable_layers
from repro.serve import (
    BatchScheduler,
    EngineCache,
    EngineSpec,
    ModelRegistry,
    PersonalizationService,
    PersonalizeRequest,
    PredictRequest,
    PredictResponse,
    ServiceConfig,
)

SPEC = EngineSpec(backend="fast", weight_format="csr")


def _sparsified_model(seed=0, num_classes=6, input_size=12):
    """A tiny model with magnitude masks installed (no training needed)."""
    model = build_model("resnet_tiny", num_classes=num_classes, input_size=input_size, seed=seed)
    for layer in prunable_layers(model).values():
        w = layer.weight.data
        layer.weight.set_mask((np.abs(w) >= np.quantile(np.abs(w), 0.7)).astype(np.float64))
    return model


def _registry_with(*seeds):
    registry = ModelRegistry()
    ids = [
        registry.register(_sparsified_model(seed=s), spec=SPEC, model_id=f"tenant-{s}")
        for s in seeds
    ]
    return registry, ids


@pytest.fixture
def batch(rng):
    return rng.normal(size=(4, 3, 12, 12))


class TestTypes:
    def test_engine_spec_round_trip(self):
        spec = EngineSpec(backend="reference", weight_format="blocked-ellpack", n=1, m=4, block_size=8)
        assert EngineSpec.from_json(spec.to_json()) == spec

    def test_engine_spec_validates(self):
        with pytest.raises(ValueError):
            EngineSpec(weight_format="coo")
        with pytest.raises(ValueError):
            EngineSpec(n=3, m=2)

    def test_personalize_request_round_trip(self):
        request = PersonalizeRequest(
            user_id=7, preferred_classes=[2, 5, 9], target_sparsity=0.9,
            engine=EngineSpec(block_size=8),
        )
        assert PersonalizeRequest.from_json(request.to_json()) == request

    def test_personalize_request_needs_classes(self):
        with pytest.raises(ValueError):
            PersonalizeRequest(user_id=0)

    def test_predict_request_round_trip(self, batch):
        request = PredictRequest("m1", batch, request_id="r1")
        restored = PredictRequest.from_json(request.to_json())
        assert restored.model_id == "m1" and restored.request_id == "r1"
        np.testing.assert_allclose(restored.inputs, batch)

    def test_predict_request_promotes_single_image(self, batch):
        assert PredictRequest("m1", batch[0]).inputs.shape == (1, 3, 12, 12)

    def test_predict_response_round_trip(self, rng):
        logits = rng.normal(size=(4, 6))
        response = PredictResponse("r1", "m1", logits, logits.argmax(axis=1), batched_with=3)
        restored = PredictResponse.from_json(response.to_json())
        np.testing.assert_allclose(restored.logits, logits)
        np.testing.assert_array_equal(restored.classes, logits.argmax(axis=1))
        assert restored.batched_with == 3

    def test_engine_spec_build_and_engine_spec_agree(self, batch):
        model = _sparsified_model()
        engine = SPEC.build(model)
        assert engine.spec == SPEC
        engine.detach()
        assert Engine.from_spec(model, SPEC, attach=False).spec == SPEC


class TestModelRegistry:
    def test_materialized_model_reproduces_predictions(self, batch):
        model = _sparsified_model()
        registry = ModelRegistry()
        model_id = registry.register(model, spec=SPEC)
        expected = SPEC.build(model).predict(batch)
        rebuilt = registry.build_engine(model_id)
        np.testing.assert_allclose(rebuilt.predict(batch), expected, atol=1e-10)

    def test_stable_ids(self):
        from repro.data import UserProfile

        profile = UserProfile(user_id=3, preferred_classes=[1, 4])
        registry = ModelRegistry()
        id_a = registry.register(_sparsified_model(seed=0), spec=SPEC, profile=profile)
        id_b = registry.register(_sparsified_model(seed=1), spec=SPEC, profile=profile)
        assert id_a == id_b  # same (arch, spec, profile) -> same address
        assert "u3" in id_a
        other = UserProfile(user_id=4, preferred_classes=[1, 4])
        assert registry.register(_sparsified_model(), spec=SPEC, profile=other) != id_a

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            ModelRegistry().get("nope")

    def test_save_load_round_trip(self, tmp_path, batch):
        registry, (model_id,) = _registry_with(0)
        registry.get(model_id).metadata["accuracy"] = 0.75
        expected = registry.build_engine(model_id).predict(batch)
        registry.save(tmp_path / "models")

        reloaded = ModelRegistry.load(tmp_path / "models")
        assert reloaded.ids() == [model_id]
        record = reloaded.get(model_id)
        assert record.spec == SPEC
        assert record.metadata["accuracy"] == 0.75
        np.testing.assert_allclose(
            reloaded.build_engine(model_id).predict(batch), expected, atol=1e-10
        )

    def test_save_preserves_masks(self, tmp_path):
        registry, (model_id,) = _registry_with(0)
        registry.save(tmp_path / "models")
        reloaded = ModelRegistry.load(tmp_path / "models")
        module = reloaded.materialize(model_id)
        masked = [l for l in prunable_layers(module).values() if l.weight.mask is not None]
        assert masked, "pruning masks must survive the save/load round trip"


class TestEngineCache:
    def test_lru_eviction_capacity_one(self, batch):
        registry, (id_a, id_b) = _registry_with(0, 1)
        cache = EngineCache(registry, capacity=1)

        engine_a = cache.get(id_a)
        assert cache.get(id_a) is engine_a  # hit reuses the instance
        cache.get(id_b)  # evicts id_a
        assert id_a not in cache and id_b in cache
        assert not engine_a.attached  # evicted engines are detached
        assert cache.get(id_a) is not engine_a  # rebuilt on return
        assert cache.stats() == {
            "capacity": 1, "resident": 1, "hits": 1, "misses": 3, "evictions": 2,
            "hit_rate": 0.25,
        }

    def test_lru_order_follows_use(self):
        registry, (id_a, id_b) = _registry_with(0, 1)
        cache = EngineCache(registry, capacity=2)
        cache.get(id_a)
        cache.get(id_b)
        cache.get(id_a)  # id_b is now least-recently-used
        assert cache.cached_ids() == [id_b, id_a]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EngineCache(ModelRegistry(), capacity=0)

    def test_stats_counters_and_hit_rate(self):
        registry, (id_a, id_b) = _registry_with(0, 1)
        cache = EngineCache(registry, capacity=2)
        assert cache.stats()["hit_rate"] == 0.0  # no lookups yet
        cache.get(id_a)
        cache.get(id_a)
        cache.get(id_b)
        cache.evict(id_b)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2 and stats["evictions"] == 1
        assert stats["hit_rate"] == pytest.approx(1 / 3)


class TestBatchScheduler:
    def test_mixed_batch_grouped_and_ordered(self, rng):
        registry, (id_a, id_b) = _registry_with(0, 1)
        scheduler = BatchScheduler(EngineCache(registry, capacity=2))
        inputs = [rng.normal(size=(2, 3, 12, 12)) for _ in range(4)]
        requests = [
            PredictRequest(id_a, inputs[0]),
            PredictRequest(id_b, inputs[1]),
            PredictRequest(id_a, inputs[2]),
            PredictRequest(id_b, inputs[3]),
        ]
        responses = scheduler.dispatch(requests)

        assert [r.request_id for r in responses] == [r.request_id for r in requests]
        assert all(r.batched_with == 2 for r in responses)
        assert scheduler.dispatches == 2  # one fused call per tenant

        engine_a = registry.build_engine(id_a)
        engine_b = registry.build_engine(id_b)
        np.testing.assert_allclose(responses[0].logits, engine_a.predict(inputs[0]), atol=1e-10)
        np.testing.assert_allclose(responses[2].logits, engine_a.predict(inputs[2]), atol=1e-10)
        np.testing.assert_allclose(responses[1].logits, engine_b.predict(inputs[1]), atol=1e-10)
        np.testing.assert_allclose(responses[3].logits, engine_b.predict(inputs[3]), atol=1e-10)
        np.testing.assert_array_equal(responses[0].classes, responses[0].logits.argmax(axis=1))

    def test_max_batch_size_splits_groups(self, rng):
        registry, (id_a,) = _registry_with(0)
        scheduler = BatchScheduler(EngineCache(registry, capacity=1), max_batch_size=2)
        requests = [PredictRequest(id_a, rng.normal(size=(1, 3, 12, 12))) for _ in range(5)]
        responses = scheduler.dispatch(requests)
        assert scheduler.dispatches == 3  # 2 + 2 + 1
        assert [r.batched_with for r in responses] == [2, 2, 2, 2, 1]

    def test_max_batch_size_interleaved_multi_tenant(self, rng):
        """Submission order survives group splitting under mixed traffic."""
        registry, (id_a, id_b) = _registry_with(0, 1)
        scheduler = BatchScheduler(EngineCache(registry, capacity=2), max_batch_size=3)
        # 7 for tenant A interleaved with 5 for tenant B: A splits 3+3+1,
        # B splits 3+2 — five dispatches, none above the cap.
        requests = [
            PredictRequest(id_a if i % 2 == 0 or i >= 10 else id_b,
                           rng.normal(size=(1, 3, 12, 12)),
                           request_id=f"mix-{i:02d}")
            for i in range(12)
        ]
        responses = scheduler.dispatch(requests)

        assert [r.request_id for r in responses] == [r.request_id for r in requests]
        assert [r.model_id for r in responses] == [r.model_id for r in requests]
        assert scheduler.largest_group <= 3
        assert scheduler.dispatches == 5  # A: 3+3+1, B: 3+2
        assert max(r.batched_with for r in responses) <= 3
        for request, response in zip(requests, responses):
            engine = registry.build_engine(request.model_id)
            np.testing.assert_allclose(
                response.logits, engine.predict(request.inputs), atol=1e-10
            )
            engine.detach()

    def test_generated_ids_skip_reserved_and_counter_advances_only_on_generate(self, rng):
        registry, (id_a,) = _registry_with(0)
        scheduler = BatchScheduler(EngineCache(registry, capacity=1))
        inputs = rng.normal(size=(1, 3, 12, 12))
        # A caller-provided id must not advance the generator's counter...
        scheduler.submit(PredictRequest(id_a, inputs, request_id="caller-0"))
        assert scheduler.submit(PredictRequest(id_a, inputs)) == "req-000000"
        # ...and a caller id squatting the generated namespace is skipped over.
        scheduler.submit(PredictRequest(id_a, inputs, request_id="req-000001"))
        assert scheduler.submit(PredictRequest(id_a, inputs)) == "req-000002"
        scheduler.flush()
        # Reservation outlives the flush: the generator never reissues it.
        assert scheduler.submit(PredictRequest(id_a, inputs)) == "req-000003"

    def test_failed_dispatch_rolls_back_its_own_submissions(self, rng):
        registry, (id_a,) = _registry_with(0)
        scheduler = BatchScheduler(EngineCache(registry, capacity=1))
        inputs = rng.normal(size=(1, 3, 12, 12))
        staged = scheduler.submit(PredictRequest(id_a, inputs, request_id="staged"))
        with pytest.raises(ValueError, match="duplicate request id"):
            scheduler.dispatch([
                PredictRequest(id_a, inputs, request_id="batch-0"),
                PredictRequest(id_a, inputs, request_id="staged"),
            ])
        # The failed call's own submissions are gone; prior work is intact
        # and the next flush stays aligned with it.
        assert scheduler.pending == 1
        responses = scheduler.flush()
        assert [r.request_id for r in responses] == [staged]

    def test_duplicate_pending_id_raises(self, rng):
        registry, (id_a,) = _registry_with(0)
        scheduler = BatchScheduler(EngineCache(registry, capacity=1))
        inputs = rng.normal(size=(1, 3, 12, 12))
        scheduler.submit(PredictRequest(id_a, inputs, request_id="dup"))
        with pytest.raises(ValueError, match="duplicate request id"):
            scheduler.submit(PredictRequest(id_a, inputs, request_id="dup"))
        scheduler.flush()
        # Once answered, the id is no longer pending and may be reused.
        scheduler.submit(PredictRequest(id_a, inputs, request_id="dup"))
        assert len(scheduler.flush()) == 1

    def test_flush_empty_queue(self):
        registry, _ = _registry_with(0)
        scheduler = BatchScheduler(EngineCache(registry, capacity=1))
        assert scheduler.flush() == []


class TestPersonalizationService:
    """The acceptance-criteria round trip, at micro scale."""

    @pytest.fixture(scope="class")
    def service(self):
        from repro.experiments.common import ExperimentScale, clear_model_cache

        scale = ExperimentScale(
            name="serve-micro",
            dataset_preset="synthetic-tiny",
            model_name="resnet_tiny",
            pretrain_epochs=1,
            finetune_epochs=1,
            prune_iterations=1,
        )
        service = make_service(
            scale, cache_capacity=1, engine=EngineSpec(block_size=8)
        )
        yield service
        clear_model_cache()

    @pytest.fixture(scope="class")
    def model_ids(self, service):
        spec = EngineSpec(block_size=8)
        return [
            service.personalize(
                PersonalizeRequest(
                    user_id=user_id, num_classes=3, target_sparsity=0.7, engine=spec
                )
            )
            for user_id in range(2)
        ]

    def test_two_profiles_register_two_models(self, service, model_ids):
        assert len(set(model_ids)) == 2
        assert service.model_ids() == sorted(model_ids)
        for model_id in model_ids:
            record = service.registry.get(model_id)
            assert record.metadata["achieved_sparsity"] > 0.5
            assert record.profile is not None

    def test_mixed_batch_answered_correctly_with_capacity_one(self, service, model_ids):
        dataset = service.dataset()
        streams = []
        for model_id in model_ids:
            profile = service.registry.get(model_id).profile
            images, _ = dataset.split("val", classes=profile.preferred_classes)
            streams.append(images)

        requests = [
            PredictRequest(model_ids[i % 2], streams[i % 2][2 * i : 2 * i + 2])
            for i in range(4)
        ]
        responses = service.predict_batch(requests)

        assert [r.model_id for r in responses] == [r.model_id for r in requests]
        for model_id, stream_idx in zip(model_ids, range(2)):
            engine = service.registry.build_engine(model_id)
            for request, response in zip(requests, responses):
                if request.model_id != model_id:
                    continue
                np.testing.assert_allclose(
                    response.logits, engine.predict(request.inputs), atol=1e-10
                )
            engine.detach()

        # Capacity-1 cache: serving two tenants must have evicted the LRU one.
        stats = service.stats()
        assert stats["cache"]["capacity"] == 1
        assert stats["cache"]["evictions"] >= 1
        assert len(service.cache) == 1

    def test_stats_schema_shared_with_cluster_telemetry(self, service, model_ids):
        """The cache block carries the counters cluster dashboards read."""
        cache_stats = service.stats()["cache"]
        assert set(cache_stats) == {
            "capacity", "resident", "hits", "misses", "evictions", "hit_rate",
        }
        assert 0.0 <= cache_stats["hit_rate"] <= 1.0

    def test_single_predict_round_trip(self, service, model_ids, rng):
        response = service.predict(model_ids[0], rng.normal(size=(2, 3, 12, 12)))
        assert response.model_id == model_ids[0]
        assert response.logits.shape == (2, 3)
        assert response.classes.shape == (2,)

    def test_engine_spec_falls_back_to_service_config(self, service, model_ids):
        model_id = service.personalize(
            PersonalizeRequest(user_id=9, num_classes=2, target_sparsity=0.7)
        )
        try:
            # No engine on the request: the service's configured spec applies.
            assert service.registry.get(model_id).spec == service.config.engine
        finally:
            service.registry.unregister(model_id)

    def test_profile_personalize_shorthand(self, service, model_ids):
        from repro.data import UserProfile

        profile = service.registry.get(model_ids[0]).profile
        again = service.personalize(
            UserProfile(profile.user_id, list(profile.preferred_classes)),
            target_sparsity=0.7,
            engine=EngineSpec(block_size=8),
        )
        assert again == model_ids[0]  # stable id: same profile + spec
        assert len(service.registry) == 2

    def test_service_save_load(self, service, model_ids, tmp_path, rng):
        batch = rng.normal(size=(2, 3, 12, 12))
        expected = service.predict(model_ids[0], batch).logits
        service.save(tmp_path / "fleet")
        reloaded = PersonalizationService.load(tmp_path / "fleet")
        assert reloaded.model_ids() == sorted(model_ids)
        np.testing.assert_allclose(
            reloaded.predict(model_ids[0], batch).logits, expected, atol=1e-10
        )

    def test_workloads_from_service(self, service, model_ids):
        from repro.hw import workloads_from_service

        workloads = workloads_from_service(service, model_ids[0], batch=2)
        assert workloads
        assert all(w.output_positions > 0 for w in workloads)
        assert any(w.weight_density < 1.0 for w in workloads)


class TestServeDemo:
    def test_request_replay_demo(self, capsys):
        from repro.experiments.serve_demo import ServeDemoConfig, run_serve_demo
        from repro.experiments.common import ExperimentScale, clear_model_cache

        scale = ExperimentScale(
            name="demo-micro",
            dataset_preset="synthetic-tiny",
            model_name="resnet_tiny",
            pretrain_epochs=1,
            finetune_epochs=1,
            prune_iterations=1,
        )
        report = run_serve_demo(
            ServeDemoConfig(users=2, requests=6, scale=scale, target_sparsity=0.7)
        )
        clear_model_cache()
        assert len(report["model_ids"]) == 2
        assert len(report["rows"]) == 6
        assert report["timings"]["per_request_s"] > 0
        assert report["stats"]["scheduler"]["largest_group"] >= 2
