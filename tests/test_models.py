"""Tests for the model zoo (topology, forward/backward, registry)."""

import numpy as np
import pytest

from repro.nn.layers import Conv2d, DepthwiseConv2d, Linear
from repro.nn.models import (
    MODEL_REGISTRY,
    available_models,
    build_model,
    mobilenet_tiny,
    mobilenet_v2,
    resnet50,
    resnet_tiny,
    vgg16,
    vgg_tiny,
)
from repro.nn.models.base import layer_weight_shapes, prunable_layers


class TestRegistry:
    def test_available_models(self):
        names = available_models()
        assert {"resnet50", "vgg16", "mobilenetv2", "resnet_tiny", "vgg_tiny", "mobilenet_tiny"} <= set(names)

    def test_build_model(self):
        model = build_model("resnet_tiny", num_classes=5, input_size=12, seed=0)
        assert model.num_classes == 5
        assert model.input_size == 12

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("alexnet", num_classes=10)

    def test_registry_constructors_consistent(self):
        for name in MODEL_REGISTRY:
            model = build_model(name, num_classes=3, input_size=12, seed=1)
            assert model.num_classes == 3


@pytest.mark.parametrize(
    "factory", [resnet_tiny, vgg_tiny, mobilenet_tiny], ids=["resnet", "vgg", "mobilenet"]
)
class TestTinyModels:
    def test_forward_shape(self, factory, rng):
        model = factory(num_classes=5, input_size=12, seed=0)
        x = rng.normal(size=(3, 3, 12, 12))
        out = model(x)
        assert out.shape == (3, 5)

    def test_backward_produces_gradients(self, factory, rng):
        model = factory(num_classes=4, input_size=12, seed=0)
        x = rng.normal(size=(2, 3, 12, 12))
        out = model(x)
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        grads = [p.grad for _, p in model.named_parameters() if p.grad is not None]
        assert len(grads) > 0
        # Every prunable layer must receive a weight gradient.
        for name, layer in prunable_layers(model).items():
            assert layer.weight.grad is not None, f"{name} got no gradient"

    def test_predict(self, factory, rng):
        model = factory(num_classes=4, input_size=12, seed=0)
        preds = model.predict(rng.normal(size=(5, 3, 12, 12)))
        assert preds.shape == (5,)
        assert set(np.unique(preds)) <= set(range(4))

    def test_deterministic_with_seed(self, factory, rng):
        a = factory(num_classes=3, input_size=12, seed=7)
        b = factory(num_classes=3, input_size=12, seed=7)
        x = rng.normal(size=(1, 3, 12, 12))
        a.eval()
        b.eval()
        np.testing.assert_allclose(a(x), b(x))


class TestFullScaleTopologies:
    def test_resnet50_block_structure(self):
        model = resnet50(num_classes=10, input_size=16, base_width=8, seed=0)
        # 3 + 4 + 6 + 3 bottleneck blocks.
        assert len(list(model.stages)) == 16
        convs = [m for m in prunable_layers(model).values() if isinstance(m, Conv2d)]
        # Each bottleneck has 3 convs + downsample convs (4 stages) + stem.
        assert len(convs) == 16 * 3 + 4 + 1

    def test_vgg16_has_13_conv_layers(self):
        model = vgg16(num_classes=10, input_size=32, width_mult=0.125, seed=0)
        convs = [m for m in prunable_layers(model).values() if isinstance(m, Conv2d)]
        assert len(convs) == 13

    def test_mobilenetv2_has_depthwise_layers(self):
        model = mobilenet_v2(num_classes=10, input_size=16, width_mult=0.25, seed=0)
        depthwise = [
            m for _, m in model.named_modules() if isinstance(m, DepthwiseConv2d)
        ]
        assert len(depthwise) == 17  # one per inverted residual block

    def test_resnet50_forward(self, rng):
        model = resnet50(num_classes=6, input_size=16, base_width=8, seed=0)
        out = model(rng.normal(size=(1, 3, 16, 16)))
        assert out.shape == (1, 6)


class TestPrunableLayerHelpers:
    def test_prunable_layers_excludes_depthwise_and_bn(self):
        model = mobilenet_tiny(num_classes=4, input_size=12, seed=0)
        layers = prunable_layers(model)
        assert all(isinstance(l, (Conv2d, Linear)) for l in layers.values())
        assert len(layers) > 3

    def test_classifier_included(self):
        model = resnet_tiny(num_classes=4, input_size=12, seed=0)
        layers = prunable_layers(model)
        assert any(isinstance(l, Linear) for l in layers.values())

    def test_layer_weight_shapes(self):
        model = resnet_tiny(num_classes=4, input_size=12, seed=0)
        shapes = layer_weight_shapes(model)
        layers = prunable_layers(model)
        assert set(shapes) == set(layers)
        for name, (rows, cols) in shapes.items():
            assert rows * cols == layers[name].weight.size
