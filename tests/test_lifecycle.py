"""Tests for repro.lifecycle: drift detection, re-pruning, versioned rollout.

Covers the full tentpole surface — the class-drift schedule, registry
versioning with save/load round-trips, engine-cache invalidation on
promote/rollback, the audited state machine, miss-first drift-target
estimation, the detector wired to a real telemetry poller, and the
end-to-end harness claims (managed beats static, byte-determinism,
one-call bit-exact rollback through the gateway).
"""

import json

import numpy as np
import pytest

from repro.lifecycle import (
    STATES,
    TRANSITIONS,
    AccuracyTracker,
    AuditLog,
    DriftDetector,
    LifecycleManager,
    LifecyclePolicy,
    LifecycleStatsSource,
    LifecycleTransition,
    RolloutMiddleware,
    RolloutTable,
    drift_fleet,
    run_lifecycle_compare,
    run_lifecycle_replay,
    split_arm,
    synthetic_repersonalizer,
)
from repro.gateway.api import LocalBackend
from repro.gateway.gateway import Gateway, GatewayConfig
from repro.gateway.wire import ApiRequest
from repro.loadgen import build_scenario
from repro.loadgen.popularity import ClassDriftPopularity
from repro.metrics.poller import TelemetryPoller
from repro.metrics.registry import MetricsRegistry
from repro.metrics.slo import SLOMonitor, accuracy_drop
from repro.nn.models import build_model
from repro.pipeline.presets import PIPELINES
from repro.serve.cache import EngineCache
from repro.serve.registry import ModelRegistry
from repro.serve.service import PersonalizationService, ServiceConfig


def tiny_registry(tenants=1, num_classes=6):
    """A registry of explicit ``tenant-<i>`` ids with phase-0 heads 0..2."""
    registry = ModelRegistry()
    ids = []
    for i in range(tenants):
        module = build_model(
            "resnet_tiny", num_classes=num_classes, input_size=12, seed=i
        )
        model_id = registry.register(
            module,
            model_id=f"tenant-{i}",
            metadata={"classes": [0, 1, 2], "version": 1, "personalized_at": 0.0},
        )
        ids.append(model_id)
    return registry, ids


def make_manager(registry, clock=None, **policy_kwargs):
    policy = LifecyclePolicy(**policy_kwargs) if policy_kwargs else LifecyclePolicy()
    return LifecycleManager(
        registry,
        synthetic_repersonalizer(registry, seed=0),
        policy=policy,
        clock=clock or (lambda: 0.0),
    )


def feed_misses(tracker, tenant, labels, n=12):
    """``n`` served requests whose labels the active head does not cover."""
    for i in range(n):
        tracker.record(tenant, False, label=labels[i % len(labels)], label_hit=False)


class TestClassDriftPopularity:
    def test_hot_classes_pure_and_disjoint_phases(self):
        pop = ClassDriftPopularity()
        first = pop.hot_classes(0, 0)
        assert first == pop.hot_classes(0, 0)
        assert len(first) == pop.head_size
        assert all(0 <= c < pop.num_classes for c in first)
        # num_classes=6, head_size=3: one rotation replaces the whole head.
        assert set(first).isdisjoint(pop.hot_classes(0, 1))

    def test_labels_track_the_current_hot_set(self):
        pop = ClassDriftPopularity(shift_every=8)
        rng = np.random.default_rng(0)
        tenant_seq = pop.sequence(32, 4, rng)
        labels = pop.labels(32, 4, tenant_seq, rng)
        for i, label in enumerate(labels):
            hot = pop.hot_classes(int(tenant_seq[i]), i // pop.shift_every)
            assert label in hot

    def test_drift_scenario_synthesis_is_deterministic(self):
        ids = [f"tenant-{i}" for i in range(3)]
        one = build_scenario("drift-step", requests=48).synthesize(ids, seed=7)
        two = build_scenario("drift-step", requests=48).synthesize(ids, seed=7)
        assert one.digest() == two.digest()
        assert [item.label for item in one.scheduled] == [
            item.label for item in two.scheduled
        ]


class TestRegistryVersioning:
    def test_version_ids_stable_and_promotion_explicit(self):
        registry, (tenant,) = tiny_registry()
        v2 = registry.register_version(
            tenant,
            build_model("resnet_tiny", num_classes=6, input_size=12, seed=9),
            metadata={"classes": [3, 4, 5], "version": 2},
        )
        assert v2 == f"{tenant}@v2"
        assert registry.versions(tenant) == [tenant, v2]
        # Registering a version must not flip traffic by itself.
        assert registry.active_version(tenant) == tenant
        assert registry.resolve(tenant) == tenant
        registry.set_active(tenant, v2)
        assert registry.resolve(tenant) == v2
        with pytest.raises(KeyError):
            registry.set_active(tenant, "tenant-0@v99")

    def test_save_load_round_trips_after_unregister(self, tmp_path):
        registry, (tenant,) = tiny_registry()
        v2 = registry.register_version(
            tenant,
            build_model("resnet_tiny", num_classes=6, input_size=12, seed=9),
            metadata={"classes": [3, 4, 5]},
        )
        v3 = registry.register_version(
            tenant,
            build_model("resnet_tiny", num_classes=6, input_size=12, seed=10),
            metadata={"classes": [1, 3, 5]},
        )
        registry.set_active(tenant, v3)
        # Dropping the active version falls back to the newest survivor.
        registry.unregister(v3)
        assert registry.versions(tenant) == [tenant, v2]
        assert registry.active_version(tenant) == v2

        registry.save(tmp_path / "reg")
        loaded = ModelRegistry.load(tmp_path / "reg")
        assert loaded.ids() == registry.ids()
        assert loaded.versions(tenant) == [tenant, v2]
        assert loaded.active_version(tenant) == v2
        assert loaded.get(v2).metadata["classes"] == [3, 4, 5]

    def test_ids_ordering_deterministic_across_loads(self, tmp_path):
        registry, ids = tiny_registry(tenants=3)
        for tenant in ids:
            registry.register_version(
                tenant,
                build_model("resnet_tiny", num_classes=6, input_size=12, seed=42),
                metadata={"classes": [3, 4, 5]},
            )
        registry.save(tmp_path / "reg")
        first = ModelRegistry.load(tmp_path / "reg")
        second = ModelRegistry.load(tmp_path / "reg")
        assert first.ids() == second.ids() == registry.ids()
        for tenant in ids:
            assert first.versions(tenant) == second.versions(tenant)

    def test_unregister_base_drops_whole_history(self):
        registry, (tenant,) = tiny_registry()
        v2 = registry.register_version(
            tenant,
            build_model("resnet_tiny", num_classes=6, input_size=12, seed=9),
        )
        registry.unregister(tenant)
        assert tenant not in registry
        assert v2 not in registry


class TestEngineCacheInvalidation:
    def test_active_version_flip_evicts_every_tenant_version(self):
        registry, (tenant,) = tiny_registry()
        cache = EngineCache(registry, capacity=4)
        cache.get(tenant)
        v2 = registry.register_version(
            tenant,
            build_model("resnet_tiny", num_classes=6, input_size=12, seed=9),
            metadata={"classes": [3, 4, 5]},
        )
        cache.get(v2)
        assert tenant in cache and v2 in cache

        registry.set_active(tenant, v2)  # promote
        assert tenant not in cache and v2 not in cache

        cache.get(tenant)
        cache.get(v2)
        # Rollback re-asserts the same active version: subscribers must
        # still fire so the abandoned canary's engines are dropped.
        registry.set_active(tenant, v2)
        assert tenant not in cache and v2 not in cache

    def test_promote_then_rollback_never_serves_stale_engine(self):
        registry, (tenant,) = tiny_registry()
        cache = EngineCache(registry, capacity=4)
        manager = make_manager(registry)
        feed_misses(manager.tracker, tenant, [3, 4, 5])
        canary = manager.on_drift(tenant, now=1.0)
        assert canary == f"{tenant}@v2"
        cache.get(tenant)
        cache.get(canary)
        assert manager.rollback(tenant, now=2.0)
        assert canary not in cache and tenant not in cache
        assert manager.state(tenant) == "SERVING"
        assert registry.resolve(tenant) == tenant


class TestAuditLog:
    def test_illegal_edges_raise(self):
        with pytest.raises(ValueError):
            LifecycleTransition(0, 0.0, "t", "SERVING", "CANARYING", "skip")
        with pytest.raises(ValueError):
            LifecycleTransition(0, 0.0, "t", "PROMOTED", "DRIFTING", "bad")
        with pytest.raises(ValueError):
            LifecycleTransition(0, 0.0, "t", "RETIRED", "SERVING", "bad")
        for from_state, to_states in TRANSITIONS.items():
            assert from_state in STATES
            for to_state in to_states:
                LifecycleTransition(0, 0.0, "t", from_state, to_state, "ok")

    def test_jsonl_round_trip_is_byte_stable(self):
        audit = AuditLog()
        audit.append(0.5, "tenant-0", "SERVING", "DRIFTING", "accuracy_drop",
                     {"accuracy": 0.2})
        audit.append(0.5, "tenant-0", "DRIFTING", "REPRUNING", "repersonalize",
                     {"target_classes": [3, 4, 5]})
        audit.append(0.6, "tenant-0", "REPRUNING", "CANARYING", "canary_started")
        text = audit.to_jsonl()
        replayed = AuditLog.replay(text.splitlines())
        assert replayed.to_jsonl() == text
        assert replayed.states_seen("tenant-0") == [
            "DRIFTING", "REPRUNING", "CANARYING",
        ]
        assert [json.loads(line)["seq"] for line in text.splitlines()] == [0, 1, 2]


class TestAccuracyTracker:
    def test_windowed_accuracy_per_arm(self):
        tracker = AccuracyTracker(window=4)
        for hit in (True, True, False, True):
            tracker.record("t", hit)
        tracker.record("t", False, arm="canary")
        assert tracker.accuracy("t") == 0.75
        assert tracker.accuracy("t", "canary") == 0.0
        assert tracker.samples("t") == 4
        tracker.record("t", False)  # rolls the oldest True out
        assert tracker.accuracy("t") == 0.5

    def test_target_estimate_prefers_misses(self):
        tracker = AccuracyTracker(window=6)
        for label in (0, 1, 2, 0, 1, 2):  # pre-drift traffic, all covered
            tracker.record("t", True, label=label, label_hit=True)
        for label in (3, 4, 5, 3, 4, 5):  # post-drift, all missed
            tracker.record("t", False, label=label, label_hit=False)
        # The stale covered labels must not leak into the target.
        assert tracker.target_estimate("t", 3) == [3, 4, 5]

    def test_target_estimate_fills_overlap_from_recent_hits(self):
        tracker = AccuracyTracker(window=6)
        # Partial drift: new head {2, 3, 4} shares class 2 with the old one.
        for label, covered in ((0, True), (3, False), (2, True), (4, False),
                               (2, True), (3, False)):
            tracker.record("t", covered, label=label, label_hit=covered)
        assert tracker.target_estimate("t", 3) == [2, 3, 4]

    def test_target_estimate_defers_on_thin_evidence(self):
        tracker = AccuracyTracker(window=6)
        tracker.record("t", False, label=3, label_hit=False)
        tracker.record("t", False, label=4, label_hit=False)
        assert tracker.target_estimate("t", 3) == []

    def test_target_estimate_shrunk_head_needs_full_miss_window(self):
        tracker = AccuracyTracker(window=3, label_window=6)
        for i in range(5):  # one short of the full label window
            tracker.record("t", False, label=[3, 4][i % 2], label_hit=False)
        assert tracker.target_estimate("t", 3) == []
        tracker.record("t", False, label=3, label_hit=False)
        assert tracker.target_estimate("t", 3) == [3, 4]

    def test_reset_tenant_clears_label_history(self):
        tracker = AccuracyTracker(window=4)
        feed_misses(tracker, "t", [3, 4, 5])
        assert tracker.target_estimate("t", 3) == [3, 4, 5]
        tracker.reset_tenant("t")
        assert tracker.target_estimate("t", 3) == []
        assert tracker.head_estimate("t", 3) == []
        assert tracker.accuracy("t") is None


class TestLifecycleManager:
    def test_full_cycle_promotes_and_flips_active(self):
        registry, (tenant,) = tiny_registry()
        manager = make_manager(registry)
        feed_misses(manager.tracker, tenant, [3, 4, 5])
        canary = manager.on_drift(tenant, now=1.0)
        assert canary == f"{tenant}@v2"
        assert manager.state(tenant) == "CANARYING"
        assert registry.get(canary).metadata["classes"] == [3, 4, 5]
        # Traffic still resolves to stable until the verdict.
        assert registry.resolve(tenant) == tenant
        for _ in range(4):
            manager.tracker.record(tenant, True, arm="canary")
        assert manager.evaluate_canary(tenant, now=2.0) == "promoted"
        assert registry.resolve(tenant) == canary
        assert manager.state(tenant) == "SERVING"
        assert manager.promoted == 1 and manager.cycles == 1
        assert manager.audit.states_seen(tenant) == [
            "DRIFTING", "REPRUNING", "CANARYING", "PROMOTED", "SERVING",
        ]

    def test_failed_canary_rolls_back(self):
        registry, (tenant,) = tiny_registry()
        manager = make_manager(registry)
        feed_misses(manager.tracker, tenant, [3, 4, 5])
        canary = manager.on_drift(tenant, now=1.0)
        for _ in range(4):
            manager.tracker.record(tenant, False, arm="canary")
        assert manager.evaluate_canary(tenant, now=2.0) == "rolled_back"
        assert registry.resolve(tenant) == tenant
        assert manager.rolled_back == 1
        assert "ROLLED_BACK" in manager.audit.states_seen(tenant)
        # The abandoned canary stays registered for post-mortem inspection.
        assert canary in registry

    def test_on_drift_defers_without_label_evidence(self):
        registry, (tenant,) = tiny_registry()
        manager = make_manager(registry)
        for _ in range(8):
            manager.tracker.record(tenant, False)  # misses but no labels
        assert manager.on_drift(tenant, now=1.0) is None
        assert manager.state(tenant) == "SERVING"
        assert len(manager.audit) == 0

    def test_mid_cycle_drift_signal_ignored(self):
        registry, (tenant,) = tiny_registry()
        manager = make_manager(registry)
        feed_misses(manager.tracker, tenant, [3, 4, 5])
        assert manager.on_drift(tenant, now=1.0) is not None
        assert manager.on_drift(tenant, now=1.1) is None


class TestDriftDetector:
    def rows(self, tenant, accuracy, requests=8):
        return [{"tenant": tenant, "accuracy": accuracy, "requests": requests}]

    def test_streak_needs_min_requests_and_for_samples(self):
        registry, (tenant,) = tiny_registry()
        manager = make_manager(registry)
        detector = DriftDetector(manager, clock=lambda: 0.0)
        feed_misses(manager.tracker, tenant, [3, 4, 5])
        detector.tick(self.rows(tenant, 0.1, requests=2))  # below sample floor
        detector.tick(self.rows(tenant, 0.1))
        assert manager.state(tenant) == "SERVING"  # streak 1 < for_samples
        detector.tick(self.rows(tenant, 0.1))
        assert manager.state(tenant) == "CANARYING"
        assert detector.detections == 1

    def test_deferred_signal_keeps_streak_and_retries(self):
        registry, (tenant,) = tiny_registry()
        manager = make_manager(registry)
        detector = DriftDetector(manager, clock=lambda: 0.0)
        # Streak matures but the tracker has no labels: the manager defers.
        detector.tick(self.rows(tenant, 0.1))
        detector.tick(self.rows(tenant, 0.1))
        assert detector.detections == 0
        assert manager.state(tenant) == "SERVING"
        # Fresh labels arrive; the very next tick must fire without
        # rebuilding the streak from zero.
        feed_misses(manager.tracker, tenant, [3, 4, 5])
        detector.tick(self.rows(tenant, 0.1))
        assert detector.detections == 1
        assert manager.state(tenant) == "CANARYING"

    def test_recovered_accuracy_resets_streak(self):
        registry, (tenant,) = tiny_registry()
        manager = make_manager(registry)
        detector = DriftDetector(manager, clock=lambda: 0.0)
        feed_misses(manager.tracker, tenant, [3, 4, 5])
        detector.tick(self.rows(tenant, 0.1))
        detector.tick(self.rows(tenant, 0.9))  # recovery
        detector.tick(self.rows(tenant, 0.1))
        assert manager.state(tenant) == "SERVING"


class TestDetectorViaTelemetryPlane:
    """The production wiring: poller -> monitor -> detector, virtually clocked."""

    class _EmptyBase:
        def stats(self):
            return {}

    def build_plane(self, wire_alerts=False):
        registry, (tenant,) = tiny_registry()
        now = {"t": 0.0}
        manager = make_manager(registry, clock=lambda: now["t"])
        metrics = MetricsRegistry()
        monitor = SLOMonitor(
            metrics,
            rules=(accuracy_drop(manager.policy.min_accuracy,
                                 manager.policy.for_samples),),
            clock=lambda: now["t"],
        )
        poller = TelemetryPoller(
            LifecycleStatsSource(self._EmptyBase(), manager.tenant_rows),
            registry=metrics,
            monitor=monitor,
            clock=lambda: now["t"],
        )
        detector = DriftDetector(manager, clock=lambda: now["t"])
        if wire_alerts:
            detector.wire(monitor)
        else:
            detector.attach(poller)
        return registry, tenant, manager, monitor, poller, detector, now

    def test_attached_detector_opens_cycle_from_poller_samples(self):
        registry, tenant, manager, monitor, poller, detector, now = (
            self.build_plane()
        )
        feed_misses(manager.tracker, tenant, [3, 4, 5])
        for t in (1.0, 2.0):
            now["t"] = t
            poller.sample(now=t)
        assert detector.ticks == 2
        assert manager.state(tenant) == "CANARYING"
        assert monitor.fired >= 1  # the stock accuracy_drop rule also saw it
        alert = monitor.alerts[0]
        assert alert.rule == "accuracy-drop"
        assert dict(alert.labels)["tenant"] == tenant

    def test_alert_wired_detector_opens_cycle_from_slo_monitor(self):
        registry, tenant, manager, monitor, poller, detector, now = (
            self.build_plane(wire_alerts=True)
        )
        feed_misses(manager.tracker, tenant, [3, 4, 5])
        for t in (1.0, 2.0):
            now["t"] = t
            poller.sample(now=t)
        assert manager.state(tenant) == "CANARYING"
        assert detector.detections == 1
        assert manager.audit.entries(tenant)[0].reason == "accuracy_drop_alert"


class TestGatewayRollback:
    """One-call rollback restores bit-exact stable responses end to end."""

    def build_stack(self):
        pop = ClassDriftPopularity()
        registry, (tenant,) = drift_fleet(pop, tenants=1, seed=0)
        table = RolloutTable()
        manager = LifecycleManager(
            registry,
            synthetic_repersonalizer(registry, seed=0),
            rollout=table,
            clock=lambda: 0.0,
        )
        service = PersonalizationService(
            ServiceConfig(cache_capacity=4), registry=registry
        )
        gateway = Gateway(
            LocalBackend(service),
            GatewayConfig(),
            middlewares=[RolloutMiddleware(table, resolve=registry.resolve)],
        )
        return pop, registry, tenant, table, manager, gateway

    def predict(self, gateway, tenant, inputs, request_id):
        response = gateway.handle(
            ApiRequest(
                "predict",
                {"model_id": tenant, "inputs": inputs},
                request_id=request_id,
                tenant=tenant,
            )
        )
        assert response.ok, response.error
        body = response.payload["response"]
        logits = np.asarray(body["logits"], dtype=np.float64).tobytes()
        return logits, body["model_id"]

    def test_rollback_restores_bit_exact_stable_responses(self):
        pop, registry, tenant, table, manager, gateway = self.build_stack()
        inputs = np.random.default_rng(3).normal(size=(1, 3, 12, 12)).tolist()
        baseline, served = self.predict(gateway, tenant, inputs, "req-base")
        assert served == tenant

        new_head = pop.hot_classes(0, 1)
        feed_misses(manager.tracker, tenant, new_head)
        canary = manager.on_drift(tenant, now=1.0)
        assert canary == f"{tenant}@v2"

        canary_rid = next(
            f"req-{i}" for i in range(1000)
            if split_arm(0, tenant, f"req-{i}", 0.5) == "canary"
        )
        canary_bytes, canary_served = self.predict(
            gateway, tenant, inputs, canary_rid
        )
        assert canary_served == canary
        assert canary_bytes != baseline  # v2 really has different weights

        assert manager.rollback(tenant, now=2.0)
        assert table.entry(tenant) is None
        for request_id in ("req-base", canary_rid):
            logits, served = self.predict(gateway, tenant, inputs, request_id)
            assert served == tenant
            assert logits == baseline


class TestLifecycleHarness:
    def test_managed_beats_static_and_promotes(self):
        payload = run_lifecycle_compare(tenants=4, requests=128, seed=0)
        cmp_block = payload["compare"]
        assert cmp_block["lifecycle_wins"]
        assert cmp_block["managed_final_accuracy"] > cmp_block["static_final_accuracy"]
        assert cmp_block["promoted"] >= 1
        assert cmp_block["slo_held"]
        # The static arm never transitions; the managed arm's audit shows a
        # complete DRIFTING -> ... -> PROMOTED cycle for some tenant.
        assert payload["static"]["audit"] == []
        managed_audit = AuditLog.replay(
            payload["managed"]["audit_jsonl"].splitlines()
        )
        promoted_tenants = {
            t.tenant for t in managed_audit.transitions if t.to_state == "PROMOTED"
        }
        assert promoted_tenants
        tenant = sorted(promoted_tenants)[0]
        seen = managed_audit.states_seen(tenant)
        assert seen.index("DRIFTING") < seen.index("PROMOTED")

    def test_same_seed_replays_are_byte_identical(self):
        one = run_lifecycle_replay(tenants=4, requests=128, seed=0)
        two = run_lifecycle_replay(tenants=4, requests=128, seed=0)
        assert one["predictions_digest"] == two["predictions_digest"]
        assert one["audit_jsonl"] == two["audit_jsonl"]
        assert one["decisions_jsonl"] == two["decisions_jsonl"]
        assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)

    def test_non_drift_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_lifecycle_replay(scenario="steady-uniform", requests=8)

    def test_lifecycle_compare_pipeline_registered(self):
        steps = PIPELINES["lifecycle-compare"](smoke=True)
        names = [step.name for step in steps]
        assert names == ["scenario", "static", "managed", "compare"]
