"""Tests for sparse storage formats and metadata accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsity.formats import (
    BlockedEllpackFormat,
    CRISPFormat,
    CSRFormat,
    DenseFormat,
    ELLPACKFormat,
    compare_formats,
    paper_block_metadata_bits,
    paper_nm_metadata_bits,
)
from repro.sparsity.hybrid import HybridSparsityConfig, hybrid_mask
from repro.sparsity.nm import nm_mask


def make_hybrid_matrix(rng, rows=32, cols=32, n=2, m=4, block_size=8, keep=2):
    """A random matrix pruned to a valid hybrid pattern."""
    weight = rng.normal(size=(rows, cols))
    mask, _ = hybrid_mask(np.abs(weight), HybridSparsityConfig(n, m, block_size), keep_blocks_per_row=keep)
    return weight * mask


class TestDenseFormat:
    def test_roundtrip_and_summary(self, rng):
        matrix = rng.normal(size=(8, 8))
        fmt = DenseFormat.from_dense(matrix)
        np.testing.assert_allclose(fmt.to_dense(), matrix)
        summary = fmt.summary()
        assert summary.metadata_bits == 0
        assert summary.data_bits == 64 * 8


class TestCSRFormat:
    def test_roundtrip(self, rng):
        matrix = rng.normal(size=(10, 12)) * (rng.random((10, 12)) < 0.3)
        fmt = CSRFormat.from_dense(matrix)
        np.testing.assert_allclose(fmt.to_dense(), matrix)

    def test_nnz_counted(self, rng):
        matrix = np.zeros((4, 4))
        matrix[0, 1] = 2.0
        matrix[3, 2] = -1.0
        summary = CSRFormat.from_dense(matrix).summary()
        assert summary.nnz == 2

    def test_metadata_scales_with_nnz(self, rng):
        sparse = rng.normal(size=(16, 16)) * (rng.random((16, 16)) < 0.2)
        dense = rng.normal(size=(16, 16))
        assert (
            CSRFormat.from_dense(dense).summary().metadata_bits
            > CSRFormat.from_dense(sparse).summary().metadata_bits
        )

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            CSRFormat.from_dense(rng.normal(size=8))

    def test_empty_matrix(self):
        fmt = CSRFormat.from_dense(np.zeros((3, 3)))
        np.testing.assert_allclose(fmt.to_dense(), 0.0)
        assert fmt.summary().nnz == 0


class TestELLPACKFormat:
    def test_roundtrip(self, rng):
        matrix = rng.normal(size=(6, 9)) * (rng.random((6, 9)) < 0.4)
        fmt = ELLPACKFormat.from_dense(matrix)
        np.testing.assert_allclose(fmt.to_dense(), matrix)

    def test_padding_penalty(self):
        """One dense row forces padding slots on every other row."""
        matrix = np.zeros((4, 8))
        matrix[0] = 1.0  # row 0 dense, rest empty
        summary = ELLPACKFormat.from_dense(matrix).summary()
        # 4 rows x 8 slots even though only 8 values exist.
        assert summary.data_bits == 4 * 8 * 8
        assert summary.nnz == 8

    def test_metadata_at_least_csr_for_irregular(self, rng):
        matrix = rng.normal(size=(12, 16))
        matrix[rng.random((12, 16)) < 0.7] = 0.0
        matrix[0] = rng.normal(size=16)  # make one row dense
        ell = ELLPACKFormat.from_dense(matrix).summary()
        csr = CSRFormat.from_dense(matrix).summary()
        assert ell.metadata_bits >= csr.metadata_bits


class TestBlockedEllpackFormat:
    def test_roundtrip(self, rng):
        matrix = make_hybrid_matrix(rng)
        fmt = BlockedEllpackFormat.from_dense(matrix, block_size=8)
        np.testing.assert_allclose(fmt.to_dense(), matrix)

    def test_roundtrip_unaligned_shape(self, rng):
        matrix = rng.normal(size=(10, 13)) * (rng.random((10, 13)) < 0.5)
        fmt = BlockedEllpackFormat.from_dense(matrix, block_size=4)
        np.testing.assert_allclose(fmt.to_dense(), matrix)

    def test_metadata_one_index_per_block(self, rng):
        matrix = make_hybrid_matrix(rng, keep=2)
        fmt = BlockedEllpackFormat.from_dense(matrix, block_size=8)
        summary = fmt.summary()
        stored_blocks = int(fmt.blocks_per_row.sum())
        assert stored_blocks == 4 * 2  # 4 block-rows, 2 kept each
        assert summary.metadata_bits == stored_blocks * 2  # ceil(log2(4 block cols)) = 2


class TestCRISPFormat:
    def test_roundtrip_on_hybrid_matrix(self, rng):
        matrix = make_hybrid_matrix(rng)
        fmt = CRISPFormat.from_dense(matrix, n=2, m=4, block_size=8)
        assert fmt.is_lossless
        np.testing.assert_allclose(fmt.to_dense(), matrix)

    def test_roundtrip_1_4_and_3_4(self, rng):
        for n in (1, 3):
            matrix = make_hybrid_matrix(rng, n=n, m=4)
            fmt = CRISPFormat.from_dense(matrix, n=n, m=4, block_size=8)
            assert fmt.is_lossless
            np.testing.assert_allclose(fmt.to_dense(), matrix)

    def test_lossy_on_violating_matrix(self, rng):
        matrix = rng.normal(size=(16, 16))  # dense: violates 2:4 everywhere
        fmt = CRISPFormat.from_dense(matrix, n=2, m=4, block_size=8)
        assert not fmt.is_lossless
        decoded = fmt.to_dense()
        # The decoded matrix satisfies 2:4 (keeps the 2 largest per group).
        mask = (decoded != 0).astype(float)
        from repro.sparsity.masks import check_nm_compliance

        assert check_nm_compliance(mask, 2, 4, axis=0)

    def test_block_size_must_be_multiple_of_m(self, rng):
        with pytest.raises(ValueError):
            CRISPFormat.from_dense(rng.normal(size=(8, 8)), n=2, m=4, block_size=6)

    def test_metadata_cheaper_than_csr_and_ellpack(self, rng):
        matrix = make_hybrid_matrix(rng, rows=64, cols=64, block_size=16, keep=2)
        summaries = compare_formats(matrix, n=2, m=4, block_size=16)
        crisp = summaries["crisp"].metadata_bits
        assert summaries["csr"].metadata_bits > crisp
        assert summaries["ellpack"].metadata_bits > crisp

    def test_metadata_offsets_cost(self, rng):
        matrix = make_hybrid_matrix(rng, rows=16, cols=16, block_size=8, keep=1)
        fmt = CRISPFormat.from_dense(matrix, n=2, m=4, block_size=8)
        summary = fmt.summary()
        stored_blocks = int(fmt.blocks_per_row.sum())
        values = stored_blocks * (8 // 4) * 8 * 2
        assert summary.data_bits == values * 8
        # 2-bit offsets per value + 1-bit-minimum block index per block.
        assert summary.metadata_bits == values * 2 + stored_blocks * 1


class TestCompareFormats:
    def test_all_formats_present(self, rng):
        matrix = make_hybrid_matrix(rng)
        summaries = compare_formats(matrix, block_size=8)
        assert set(summaries) == {"dense", "csr", "ellpack", "blocked-ellpack", "crisp"}

    def test_overhead_ratio_helper(self, rng):
        matrix = make_hybrid_matrix(rng)
        summaries = compare_formats(matrix, block_size=8)
        ratio = summaries["csr"].metadata_overhead_vs(summaries["crisp"])
        assert ratio > 1.0

    @given(st.sampled_from([(1, 4), (2, 4), (3, 4)]), st.sampled_from([8, 16]))
    @settings(max_examples=12, deadline=None)
    def test_property_roundtrips(self, nm_pair, block_size):
        n, m = nm_pair
        rng = np.random.default_rng(n * 13 + block_size)
        matrix = make_hybrid_matrix(
            rng, rows=block_size * 3, cols=block_size * 2, n=n, m=m, block_size=block_size, keep=1
        )
        for cls, kwargs in (
            (CSRFormat, {}),
            (ELLPACKFormat, {}),
            (BlockedEllpackFormat, {"block_size": block_size}),
            (CRISPFormat, {"n": n, "m": m, "block_size": block_size}),
        ):
            fmt = cls.from_dense(matrix, **kwargs)
            np.testing.assert_allclose(fmt.to_dense(), matrix, err_msg=cls.__name__)


class TestPaperFormulas:
    def test_block_formula_positive_and_scales(self):
        small = paper_block_metadata_bits(s=64, k=576, k_prime=144, block_size=16)
        large = paper_block_metadata_bits(s=64, k=576, k_prime=288, block_size=16)
        assert 0 < small < large

    def test_block_formula_bigger_blocks_cost_less(self):
        b16 = paper_block_metadata_bits(s=64, k=576, k_prime=288, block_size=16)
        b64 = paper_block_metadata_bits(s=64, k=576, k_prime=288, block_size=64)
        assert b64 < b16

    def test_block_formula_invalid(self):
        with pytest.raises(ValueError):
            paper_block_metadata_bits(s=64, k=100, k_prime=0, block_size=16)

    def test_nm_formula(self):
        # S * K' * (N/M) * floor(log2(M)) = 64 * 128 * 0.5 * 2
        assert paper_nm_metadata_bits(64, 128, 2, 4) == pytest.approx(64 * 128 * 0.5 * 2)

    def test_nm_formula_invalid(self):
        with pytest.raises(ValueError):
            paper_nm_metadata_bits(64, 128, 5, 4)
