"""Tests for the reference sparse GEMM kernels (functional accelerator models)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsity.formats import BlockedEllpackFormat, CRISPFormat, CSRFormat
from repro.sparsity.hybrid import HybridSparsityConfig, hybrid_mask
from repro.sparsity.sparse_ops import (
    blocked_ellpack_matmul,
    crisp_matmul,
    csr_matmul,
    dense_matmul,
    effective_macs,
    masked_matmul,
)


def hybrid_weight(rng, rows=32, cols=16, n=2, m=4, block_size=8, keep=2):
    weight = rng.normal(size=(rows, cols))
    mask, _ = hybrid_mask(
        np.abs(weight), HybridSparsityConfig(n, m, block_size), keep_blocks_per_row=keep
    )
    return weight * mask, mask


class TestDenseAndMasked:
    def test_dense_matmul(self, rng):
        w = rng.normal(size=(6, 4))
        a = rng.normal(size=(6, 3))
        np.testing.assert_allclose(dense_matmul(w, a), w.T @ a)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            dense_matmul(rng.normal(size=(6, 4)), rng.normal(size=(5, 3)))

    def test_masked_equals_dense_of_masked_weight(self, rng):
        w = rng.normal(size=(8, 4))
        mask = (rng.random((8, 4)) < 0.5).astype(float)
        a = rng.normal(size=(8, 2))
        np.testing.assert_allclose(masked_matmul(w, mask, a), (w * mask).T @ a)


class TestFormatMatmuls:
    def test_csr_matches_dense(self, rng):
        w = rng.normal(size=(10, 6)) * (rng.random((10, 6)) < 0.4)
        a = rng.normal(size=(10, 5))
        fmt = CSRFormat.from_dense(w)
        np.testing.assert_allclose(csr_matmul(fmt, a), w.T @ a, atol=1e-10)

    def test_csr_activation_mismatch(self, rng):
        fmt = CSRFormat.from_dense(rng.normal(size=(4, 4)))
        with pytest.raises(ValueError):
            csr_matmul(fmt, rng.normal(size=(5, 2)))

    def test_blocked_ellpack_matches_dense(self, rng):
        w, _ = hybrid_weight(rng)
        a = rng.normal(size=(32, 4))
        fmt = BlockedEllpackFormat.from_dense(w, block_size=8)
        np.testing.assert_allclose(blocked_ellpack_matmul(fmt, a), w.T @ a, atol=1e-10)

    def test_blocked_ellpack_unaligned(self, rng):
        w = rng.normal(size=(10, 6)) * (rng.random((10, 6)) < 0.5)
        a = rng.normal(size=(10, 3))
        fmt = BlockedEllpackFormat.from_dense(w, block_size=4)
        np.testing.assert_allclose(blocked_ellpack_matmul(fmt, a), w.T @ a, atol=1e-10)

    def test_crisp_matches_dense(self, rng):
        w, _ = hybrid_weight(rng)
        a = rng.normal(size=(32, 4))
        fmt = CRISPFormat.from_dense(w, n=2, m=4, block_size=8)
        np.testing.assert_allclose(crisp_matmul(fmt, a), w.T @ a, atol=1e-10)

    def test_crisp_activation_mismatch(self, rng):
        w, _ = hybrid_weight(rng)
        fmt = CRISPFormat.from_dense(w, n=2, m=4, block_size=8)
        with pytest.raises(ValueError):
            crisp_matmul(fmt, rng.normal(size=(16, 2)))

    @given(st.sampled_from([(1, 4), (2, 4), (3, 4)]), st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_property_crisp_pipeline_equals_reference(self, nm_pair, keep):
        """The two-stage CRISP datapath (block gather + N:M mux) computes the
        same GEMM as the masked dense reference, for any supported pattern."""
        n, m = nm_pair
        rng = np.random.default_rng(n * 17 + keep)
        w, mask = hybrid_weight(rng, rows=24, cols=16, n=n, m=m, block_size=8, keep=min(keep, 2))
        a = rng.normal(size=(24, 3))
        fmt = CRISPFormat.from_dense(w, n=n, m=m, block_size=8)
        np.testing.assert_allclose(crisp_matmul(fmt, a), masked_matmul(w, mask, a), atol=1e-10)


class TestEffectiveMacs:
    def test_counts(self):
        mask = np.array([[1, 0], [1, 1]])
        assert effective_macs(mask, batch=1) == 3
        assert effective_macs(mask, batch=4) == 12
