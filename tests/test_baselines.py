"""Tests for the baseline pruning methods."""

import numpy as np
import pytest

from repro.nn.models.base import prunable_layers
from repro.nn.layers import Linear
from repro.pruning import model_sparsity
from repro.pruning.baselines import (
    block_prune,
    channel_prune,
    dense_finetune,
    nm_prune,
    unstructured_prune,
)
from repro.sparsity.masks import check_nm_compliance


class TestDenseFinetune:
    def test_reports_dense_statistics(self, tiny_resnet, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        result = dense_finetune(tiny_resnet, train_loader, val_loader, epochs=2)
        assert result.method == "dense"
        assert result.achieved_sparsity == pytest.approx(0.0, abs=1e-6)
        assert result.flops_ratio == pytest.approx(1.0)
        assert 0.0 <= result.final_accuracy <= 1.0
        assert 0.0 <= result.baseline_accuracy <= 1.0
        assert result.accuracy_drop == pytest.approx(
            result.baseline_accuracy - result.final_accuracy
        )

    def test_no_val_loader(self, tiny_resnet, tiny_loaders):
        train_loader, _ = tiny_loaders
        result = dense_finetune(tiny_resnet, train_loader, epochs=1)
        assert result.final_accuracy is None


class TestNMPrune:
    @pytest.mark.parametrize("n,m", [(1, 4), (2, 4), (3, 4)])
    def test_reaches_exact_nm_sparsity(self, n, m, tiny_resnet, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        result = nm_prune(tiny_resnet, n, m, train_loader, val_loader, finetune_epochs=1)
        assert result.achieved_sparsity == pytest.approx(1 - n / m, abs=0.02)
        assert result.method == f"nm-{n}:{m}"

    def test_masks_nm_compliant(self, tiny_vgg, tiny_loaders):
        train_loader, _ = tiny_loaders
        nm_prune(tiny_vgg, 2, 4, train_loader, finetune_epochs=0)
        for name, layer in prunable_layers(tiny_vgg).items():
            c_out = layer.reshaped_weight().shape[1]
            mask2d = layer.weight.mask.reshape(c_out, -1).T
            assert check_nm_compliance(mask2d, 2, 4, axis=0), name

    def test_without_data_uses_magnitude(self, tiny_resnet):
        result = nm_prune(tiny_resnet, 2, 4, class_aware=False, finetune_epochs=0)
        assert result.achieved_sparsity == pytest.approx(0.5, abs=0.02)
        assert result.final_accuracy is None


class TestBlockPrune:
    def test_reaches_target(self, tiny_resnet, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        result = block_prune(
            tiny_resnet, target_sparsity=0.75, block_size=8,
            train_loader=train_loader, val_loader=val_loader, finetune_epochs=1,
        )
        assert result.achieved_sparsity == pytest.approx(0.75, abs=0.08)
        assert result.method == "block-8"

    def test_invalid_target(self, tiny_resnet):
        with pytest.raises(ValueError):
            block_prune(tiny_resnet, target_sparsity=1.2)

    def test_removes_whole_blocks(self, tiny_vgg, tiny_loaders):
        train_loader, _ = tiny_loaders
        block_size = 8
        block_prune(
            tiny_vgg, target_sparsity=0.5, block_size=block_size,
            train_loader=train_loader, finetune_epochs=0,
        )
        from repro.sparsity.block import partition_into_blocks

        for name, layer in prunable_layers(tiny_vgg).items():
            c_out = layer.reshaped_weight().shape[1]
            mask2d = layer.weight.mask.reshape(c_out, -1).T
            tiles, grid = partition_into_blocks(mask2d, block_size)
            per_block = tiles.reshape(grid.block_rows, grid.block_cols, -1).mean(axis=2)
            # Every block is either fully kept or fully pruned (ignoring padding edges).
            interior = per_block[: mask2d.shape[0] // block_size, : mask2d.shape[1] // block_size]
            assert np.all((interior == 0.0) | (interior == 1.0)), name


class TestUnstructuredPrune:
    def test_reaches_target(self, tiny_resnet, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        result = unstructured_prune(
            tiny_resnet, target_sparsity=0.9, train_loader=train_loader,
            val_loader=val_loader, finetune_epochs=1,
        )
        assert result.achieved_sparsity == pytest.approx(0.9, abs=0.03)
        assert result.method == "unstructured"

    def test_keeps_most_salient_weights(self, tiny_resnet, tiny_loaders):
        """Unstructured pruning at matched sparsity should retain accuracy at
        least as well as random expectation (sanity, not a strong claim)."""
        train_loader, val_loader = tiny_loaders
        result = unstructured_prune(
            tiny_resnet, target_sparsity=0.5, train_loader=train_loader,
            val_loader=val_loader, finetune_epochs=1,
        )
        assert result.final_accuracy >= 0.2

    def test_every_output_column_keeps_a_weight(self, tiny_vgg, tiny_loaders):
        train_loader, _ = tiny_loaders
        unstructured_prune(
            tiny_vgg, target_sparsity=0.95, train_loader=train_loader, finetune_epochs=0
        )
        for name, layer in prunable_layers(tiny_vgg).items():
            c_out = layer.reshaped_weight().shape[1]
            mask2d = layer.weight.mask.reshape(c_out, -1).T
            assert np.all(mask2d.sum(axis=0) >= 1), name

    def test_invalid_target(self, tiny_resnet):
        with pytest.raises(ValueError):
            unstructured_prune(tiny_resnet, target_sparsity=-0.1)


class TestChannelPrune:
    def test_removes_whole_channels(self, tiny_vgg, tiny_loaders):
        train_loader, _ = tiny_loaders
        channel_prune(tiny_vgg, target_sparsity=0.5, train_loader=train_loader, finetune_epochs=0)
        for name, layer in prunable_layers(tiny_vgg).items():
            if isinstance(layer, Linear) and layer.out_features == tiny_vgg.num_classes:
                continue
            c_out = layer.reshaped_weight().shape[1]
            mask2d = layer.weight.mask.reshape(c_out, -1).T
            column_density = mask2d.mean(axis=0)
            assert np.all((column_density == 0.0) | (column_density == 1.0)), name

    def test_classifier_not_pruned_by_default(self, tiny_resnet, tiny_loaders):
        train_loader, _ = tiny_loaders
        channel_prune(tiny_resnet, target_sparsity=0.5, train_loader=train_loader, finetune_epochs=0)
        classifier = [
            l for l in prunable_layers(tiny_resnet).values()
            if isinstance(l, Linear) and l.out_features == tiny_resnet.num_classes
        ]
        assert classifier and classifier[0].weight.mask is None

    def test_target_sparsity_approximate(self, tiny_vgg, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        result = channel_prune(
            tiny_vgg, target_sparsity=0.5, train_loader=train_loader,
            val_loader=val_loader, finetune_epochs=1,
        )
        assert result.achieved_sparsity == pytest.approx(0.5, abs=0.15)
        assert result.flops_ratio < 1.0

    def test_min_channels_survive(self, tiny_vgg, tiny_loaders):
        train_loader, _ = tiny_loaders
        channel_prune(
            tiny_vgg, target_sparsity=0.99, train_loader=train_loader,
            finetune_epochs=0, min_channels=2,
        )
        for name, layer in prunable_layers(tiny_vgg).items():
            if layer.weight.mask is None:
                continue
            c_out = layer.reshaped_weight().shape[1]
            mask2d = layer.weight.mask.reshape(c_out, -1).T
            kept_channels = (mask2d.sum(axis=0) > 0).sum()
            assert kept_channels >= 2, name

    def test_invalid_target(self, tiny_vgg):
        with pytest.raises(ValueError):
            channel_prune(tiny_vgg, target_sparsity=1.0)


class TestCrossMethodComparison:
    def test_crisp_matches_or_beats_block_at_high_sparsity(self, tiny_loaders, tiny_dataset):
        """The paper's central accuracy claim (Fig. 3), at tiny scale: at a high
        sparsity target, CRISP's hybrid pattern should not do worse than pure
        block pruning (allowing a small tolerance for run-to-run noise)."""
        from repro.nn.models import resnet_tiny
        from repro.pruning import CRISPConfig, CRISPPruner

        train_loader, val_loader = tiny_loaders

        block_model = resnet_tiny(num_classes=4, input_size=tiny_dataset.image_size, seed=0)
        block_result = block_prune(
            block_model, target_sparsity=0.75, block_size=8,
            train_loader=train_loader, val_loader=val_loader, finetune_epochs=1,
        )

        crisp_model = resnet_tiny(num_classes=4, input_size=tiny_dataset.image_size, seed=0)
        crisp_result = CRISPPruner(
            crisp_model,
            CRISPConfig(n=2, m=4, block_size=8, target_sparsity=0.75, iterations=2,
                        finetune_epochs=1, saliency_batches=2),
        ).prune(train_loader, val_loader)

        assert crisp_result.final_accuracy >= block_result.final_accuracy - 0.15
