"""Tests for the sharded concurrent serving runtime (:mod:`repro.cluster`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterService,
    ConsistentHashRouter,
    LatencyHistogram,
    RejectedResponse,
    ShardOverloadError,
    ShardTelemetry,
    ShardWorker,
    merge_snapshots,
)
from repro.nn.models import build_model
from repro.nn.models.base import prunable_layers
from repro.serve import (
    EngineSpec,
    ModelRegistry,
    PersonalizationService,
    PredictRequest,
    ServiceConfig,
)

SPEC = EngineSpec(backend="fast", weight_format="csr")


def _sparsified_model(seed=0, num_classes=6, input_size=12):
    """A tiny model with magnitude masks installed (no training needed)."""
    model = build_model("resnet_tiny", num_classes=num_classes, input_size=input_size, seed=seed)
    for layer in prunable_layers(model).values():
        w = layer.weight.data
        layer.weight.set_mask((np.abs(w) >= np.quantile(np.abs(w), 0.7)).astype(np.float64))
    return model


def _fleet(tenants=6):
    """Register ``tenants`` sparsified models; returns (registry, model_ids)."""
    registry = ModelRegistry()
    ids = [
        registry.register(_sparsified_model(seed=s), spec=SPEC, model_id=f"tenant-{s}")
        for s in range(tenants)
    ]
    return registry, ids


def _stream(model_ids, requests=24, seed=0):
    """Round-robin mixed-tenant stream of single-image requests."""
    rng = np.random.default_rng(seed)
    return [
        PredictRequest(
            model_ids[i % len(model_ids)],
            rng.normal(size=(1, 3, 12, 12)),
            request_id=f"r-{i:04d}",
        )
        for i in range(requests)
    ]


class TestConsistentHashRouter:
    KEYS = [f"tenant-{i}" for i in range(64)]

    def test_routing_is_deterministic_across_instances(self):
        a = ConsistentHashRouter(range(4))
        b = ConsistentHashRouter(range(4))
        assert [a.route(k) for k in self.KEYS] == [b.route(k) for k in self.KEYS]

    def test_assignments_partition_all_keys(self):
        router = ConsistentHashRouter(range(3))
        table = router.assignments(self.KEYS)
        assert set(table) == {0, 1, 2}
        assert sorted(k for keys in table.values() for k in keys) == sorted(self.KEYS)

    def test_add_shard_moves_keys_only_to_the_new_shard(self):
        router = ConsistentHashRouter(range(4))
        before = {k: router.route(k) for k in self.KEYS}
        router.add_shard(4)
        after = {k: router.route(k) for k in self.KEYS}
        moved = {k for k in self.KEYS if before[k] != after[k]}
        assert moved, "some keys should land on the new shard"
        assert all(after[k] == 4 for k in moved)  # survivors keep their keys
        assert len(moved) < len(self.KEYS) / 2  # ~1/(shards+1), not a reshuffle

    def test_remove_shard_moves_only_its_keys(self):
        router = ConsistentHashRouter(range(4))
        before = {k: router.route(k) for k in self.KEYS}
        router.remove_shard(2)
        after = {k: router.route(k) for k in self.KEYS}
        for key in self.KEYS:
            if before[key] != 2:
                assert after[key] == before[key]
            else:
                assert after[key] != 2

    def test_membership_errors(self):
        router = ConsistentHashRouter([0])
        with pytest.raises(ValueError):
            router.add_shard(0)
        with pytest.raises(KeyError):
            router.remove_shard(9)
        with pytest.raises(ValueError):
            ConsistentHashRouter(replicas=0)

    def test_empty_ring_cannot_route(self):
        with pytest.raises(RuntimeError):
            ConsistentHashRouter().route("tenant-0")
        with pytest.raises(RuntimeError):
            ConsistentHashRouter().balanced_assignments(["tenant-0"])

    def test_balanced_assignments_respect_pigeonhole_bound(self):
        router = ConsistentHashRouter(range(4))
        table = router.balanced_assignments(self.KEYS)
        assert sorted(k for keys in table.values() for k in keys) == sorted(self.KEYS)
        assert max(len(keys) for keys in table.values()) == len(self.KEYS) // 4

    def test_balanced_assignments_deterministic_across_instances(self):
        a = ConsistentHashRouter(range(3)).balanced_assignments(self.KEYS)
        b = ConsistentHashRouter(range(3)).balanced_assignments(self.KEYS)
        assert a == b

    def test_balanced_assignments_follow_the_ring_when_room_allows(self):
        router = ConsistentHashRouter(range(4))
        # With a slack bound the placement degenerates to plain routing
        # (same partition; balanced_assignments lists keys in ring order).
        table = router.balanced_assignments(self.KEYS, max_load=len(self.KEYS))
        plain = router.assignments(self.KEYS)
        assert {s: set(keys) for s, keys in table.items()} == {
            s: set(keys) for s, keys in plain.items()
        }
        with pytest.raises(ValueError):
            router.balanced_assignments(self.KEYS, max_load=0)

    def test_balanced_assignments_overflow_falls_back_to_ring_owner(self):
        router = ConsistentHashRouter(range(2))
        # A bound below the pigeonhole minimum cannot be honoured; keys still
        # all get placed (on their plain ring owner once every shard is full).
        table = router.balanced_assignments(self.KEYS, max_load=1)
        assert sorted(k for keys in table.values() for k in keys) == sorted(self.KEYS)


class TestShardWorker:
    def test_staged_queue_fuses_cotenant_requests(self):
        registry, model_ids = _fleet(tenants=2)
        worker = ShardWorker(0, registry, cache_capacity=2)
        requests = _stream(model_ids, requests=6)
        futures = [worker.submit(r) for r in requests]  # staged before start
        worker.start()
        responses = [f.result(timeout=10) for f in futures]
        worker.stop()

        assert [r.request_id for r in responses] == [r.request_id for r in requests]
        # All six were queued before the drain began, so the deadline trigger
        # collects them into one flush and each tenant's trio fuses.
        assert all(r.batched_with == 3 for r in responses)
        snapshot = worker.telemetry.snapshot()
        assert snapshot["submitted"] == 6 and snapshot["completed"] == 6
        assert snapshot["batch_size"]["max"] == 6  # one drain of the staged queue
        assert snapshot["latency"]["count"] == 6

    def test_bounded_queue_overload(self):
        registry, model_ids = _fleet(tenants=1)
        worker = ShardWorker(0, registry, max_pending=2)  # never started
        requests = _stream(model_ids, requests=3)
        worker.submit(requests[0])
        worker.submit(requests[1])
        with pytest.raises(ShardOverloadError):
            worker.submit(requests[2])
        assert worker.telemetry.snapshot()["rejected"] == 1

    def test_unknown_model_fails_future_not_batch(self):
        registry, model_ids = _fleet(tenants=1)
        worker = ShardWorker(0, registry)
        good = worker.submit(_stream(model_ids, requests=1)[0])
        bad = worker.submit(PredictRequest("ghost", np.zeros((1, 3, 12, 12))))
        worker.start()
        # The unknown id fails its own future; nothing poisons the shard loop.
        with pytest.raises(KeyError):
            bad.result(timeout=10)
        worker.stop()
        assert not worker.is_alive()

    def test_stop_fails_stranded_futures_instead_of_leaking(self):
        registry, model_ids = _fleet(tenants=1)
        worker = ShardWorker(0, registry)
        future = worker.submit(_stream(model_ids, requests=1)[0])
        worker.stop()  # never started: nothing will ever drain the queue
        with pytest.raises(RuntimeError, match="shut down"):
            future.result(timeout=1)
        assert worker.telemetry.snapshot()["failed"] == 1

    def test_submit_after_stop_raises(self):
        registry, model_ids = _fleet(tenants=1)
        worker = ShardWorker(0, registry)
        worker.start()
        worker.stop()
        with pytest.raises(RuntimeError):
            worker.submit(_stream(model_ids, requests=1)[0])


class TestClusterService:
    def test_sharded_predictions_bit_exact_with_single_process(self):
        """Acceptance criterion: same stream, same bits, any deployment."""
        registry, model_ids = _fleet(tenants=6)
        requests = _stream(model_ids, requests=24)
        single = PersonalizationService(ServiceConfig(cache_capacity=6), registry=registry)
        expected = single.predict_batch(requests)
        with ClusterService(
            ClusterConfig(shards=4, cache_capacity=2), registry=registry
        ) as cluster:
            responses = cluster.predict_batch(requests, timeout=30)
            stats = cluster.stats()

        assert [r.request_id for r in responses] == [r.request_id for r in requests]
        assert all(r.status == 200 and r.ok for r in responses)
        for a, b in zip(expected, responses):
            np.testing.assert_array_equal(a.logits, b.logits)
            np.testing.assert_array_equal(a.classes, b.classes)
        totals = stats["totals"]
        assert totals["completed"] == len(requests)
        assert totals["rejected"] == 0 and totals["failed"] == 0

    def test_requests_route_by_balanced_placement(self):
        registry, model_ids = _fleet(tenants=6)
        cluster = ClusterService(
            ClusterConfig(shards=3), registry=registry, start=False
        )
        try:
            table = cluster.router.balanced_assignments(registry.ids())
            for model_id in model_ids:
                owner = cluster.worker_for(model_id).shard_id
                assert model_id in table[owner]
            # No shard exceeds the pigeonhole minimum: 6 tenants / 3 shards.
            loads = [len(cluster.router.balanced_assignments(registry.ids())[s])
                     for s in cluster.router.shard_ids()]
            assert max(loads) == 2
            # Unregistered keys fall back to plain ring routing.
            assert cluster.worker_for("ghost").shard_id == cluster.router.route("ghost")
        finally:
            cluster.shutdown()

    def test_admission_control_rejects_with_503(self):
        registry, model_ids = _fleet(tenants=1)
        cluster = ClusterService(
            ClusterConfig(shards=1, max_pending=4, high_water=1),
            registry=registry,
            start=False,  # nothing drains, so the queue depth is deterministic
        )
        requests = _stream(model_ids, requests=2)
        accepted = cluster.submit(requests[0])
        rejected = cluster.submit(requests[1]).result(timeout=1)
        assert isinstance(rejected, RejectedResponse)
        assert rejected.status == 503 and not rejected.ok
        assert rejected.request_id == requests[1].request_id
        assert rejected.to_dict()["status"] == 503

        cluster.start()  # drain the accepted request, then stop
        assert accepted.result(timeout=10).status == 200
        cluster.shutdown()
        assert cluster.stats()["totals"]["rejected"] == 1

    def test_unknown_model_id_fails_fast(self):
        registry, _ = _fleet(tenants=1)
        with ClusterService(ClusterConfig(shards=2), registry=registry) as cluster:
            future = cluster.submit(PredictRequest("ghost", np.zeros((1, 3, 12, 12))))
            with pytest.raises(KeyError, match="ghost"):
                future.result(timeout=1)

    def test_scale_out_and_in_preserves_predictions(self):
        registry, model_ids = _fleet(tenants=6)
        requests = _stream(model_ids, requests=12)
        single = PersonalizationService(ServiceConfig(cache_capacity=6), registry=registry)
        expected = single.predict_batch(requests)

        with ClusterService(ClusterConfig(shards=2), registry=registry) as cluster:
            baseline = cluster.predict_batch(requests, timeout=30)
            new_shard = cluster.add_shard()
            assert cluster.shards == 3 and new_shard in cluster.router
            scaled_out = cluster.predict_batch(requests, timeout=30)
            cluster.remove_shard(new_shard)
            assert cluster.shards == 2
            scaled_in = cluster.predict_batch(requests, timeout=30)

        for replay in (baseline, scaled_out, scaled_in):
            for a, b in zip(expected, replay):
                np.testing.assert_array_equal(a.logits, b.logits)

    def test_cannot_remove_last_shard(self):
        registry, _ = _fleet(tenants=1)
        cluster = ClusterService(ClusterConfig(shards=1), registry=registry, start=False)
        try:
            with pytest.raises(ValueError):
                cluster.remove_shard(0)
            with pytest.raises(KeyError):
                cluster.remove_shard(7)
        finally:
            cluster.shutdown()

    def test_stats_schema_matches_single_process_service(self):
        registry, model_ids = _fleet(tenants=4)
        single = PersonalizationService(registry=registry)
        requests = _stream(model_ids, requests=8)
        single.predict_batch(requests)
        with ClusterService(ClusterConfig(shards=2), registry=registry) as cluster:
            cluster.predict_batch(requests, timeout=30)
            stats = cluster.stats()

        reference = single.stats()
        for shard in stats["per_shard"]:
            assert set(shard["cache"]) == set(reference["cache"])
            assert set(shard["scheduler"]) == set(reference["scheduler"])
        assert set(stats["cache"]) >= {"hits", "misses", "evictions", "hit_rate"}
        latency = stats["totals"]["latency"]
        assert {"p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms"} <= set(latency)
        assert latency["p50_ms"] <= latency["p99_ms"] <= latency["max_ms"] + 1e-9
        batch = stats["totals"]["batch_size"]
        assert batch["dispatches"] >= 2 and batch["mean"] >= 1.0

    def test_predict_sync_and_engine_accessor(self, rng):
        registry, model_ids = _fleet(tenants=2)
        with ClusterService(ClusterConfig(shards=2), registry=registry) as cluster:
            batch = rng.normal(size=(2, 3, 12, 12))
            response = cluster.predict(model_ids[0], batch, timeout=30)
            assert response.model_id == model_ids[0]
            assert response.logits.shape == (2, 6)
            # The engine accessor resolves through the owning shard's cache.
            engine = cluster.engine(model_ids[0])
            assert model_ids[0] in cluster.worker_for(model_ids[0]).cache
            np.testing.assert_array_equal(engine.predict(batch), response.logits)

    def test_personalize_evicts_stale_engines_on_every_shard(self):
        registry, model_ids = _fleet(tenants=2)
        cluster = ClusterService(ClusterConfig(shards=2), registry=registry, start=False)
        try:
            # Warm the tenant's engine on BOTH shards — placement changes can
            # leave a former owner holding a cached engine.
            for worker in cluster._workers.values():
                worker.engine(model_ids[0])
            cluster.service.personalize = lambda request, **kw: model_ids[0]
            assert cluster.personalize(None) == model_ids[0]
            for worker in cluster._workers.values():
                assert model_ids[0] not in worker.cache
        finally:
            cluster.shutdown()

    def test_workloads_from_service_accepts_cluster(self):
        from repro.hw import workloads_from_service

        registry, model_ids = _fleet(tenants=2)
        with ClusterService(ClusterConfig(shards=2), registry=registry) as cluster:
            workloads = workloads_from_service(cluster, model_ids[0], batch=2)
        assert workloads
        assert any(w.weight_density < 1.0 for w in workloads)

    def test_save_load_round_trip(self, tmp_path, rng):
        registry, model_ids = _fleet(tenants=2)
        batch = rng.normal(size=(1, 3, 12, 12))
        with ClusterService(ClusterConfig(shards=2), registry=registry) as cluster:
            expected = cluster.predict(model_ids[0], batch, timeout=30).logits
            cluster.save(tmp_path / "fleet")
        with ClusterService.load(tmp_path / "fleet", ClusterConfig(shards=2)) as reloaded:
            assert reloaded.model_ids() == sorted(model_ids)
            np.testing.assert_allclose(
                reloaded.predict(model_ids[0], batch, timeout=30).logits,
                expected,
                atol=1e-10,
            )

    def test_shutdown_is_graceful_and_final(self):
        registry, model_ids = _fleet(tenants=2)
        cluster = ClusterService(ClusterConfig(shards=2), registry=registry)
        futures = [cluster.submit(r) for r in _stream(model_ids, requests=6)]
        cluster.shutdown()  # drains in-flight work before stopping
        assert all(f.result(timeout=1).status == 200 for f in futures)
        with pytest.raises(RuntimeError):
            cluster.submit(_stream(model_ids, requests=1)[0])
        cluster.shutdown()  # idempotent

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(shards=0)
        with pytest.raises(ValueError):
            ClusterConfig(workers="forked")
        with pytest.raises(ValueError):
            ClusterConfig(max_pending=4, high_water=5)


class TestTelemetry:
    def test_latency_histogram_percentiles(self):
        histogram = LatencyHistogram()
        for ms in range(1, 101):  # 1ms..100ms
            histogram.record(ms / 1e3)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["p50_ms"] == pytest.approx(50.5)
        assert summary["p95_ms"] == pytest.approx(95.05)
        assert summary["p99_ms"] == pytest.approx(99.01)
        assert summary["max_ms"] == pytest.approx(100.0)
        assert summary["mean_ms"] == pytest.approx(50.5)

    def test_histogram_merge_and_reservoir_bound(self):
        a, b = LatencyHistogram(max_samples=4), LatencyHistogram(max_samples=4)
        for value in (0.001, 0.002):
            a.record(value)
        for value in (0.003, 0.004, 0.005, 0.006, 0.007):
            b.record(value)  # overflows the reservoir; lifetime count keeps all
        merged = a.merge(b)
        assert merged.count == 7
        assert merged.max == pytest.approx(0.007)
        assert len(merged._samples) == 4  # bounded reservoir survives the merge

    def test_snapshot_and_merge_schema(self):
        first, second = ShardTelemetry(0), ShardTelemetry(1)
        first.record_submit(3)
        first.record_dispatch(batch_size=3, queue_depth=2)
        for latency in (0.001, 0.002, 0.003):
            first.record_completion(latency)
        second.record_submit(1)
        second.record_reject()
        second.record_dispatch(batch_size=1, queue_depth=0)
        second.record_completion(0.004)

        totals = merge_snapshots([first.snapshot(), second.snapshot()])
        assert totals["shards"] == 2
        assert totals["submitted"] == 4 and totals["completed"] == 4
        assert totals["rejected"] == 1
        assert totals["batch_size"]["dispatches"] == 2
        assert totals["batch_size"]["mean"] == pytest.approx(2.0)
        assert totals["latency"]["count"] == 4
        assert totals["latency"]["max_ms"] == pytest.approx(4.0)
        assert first.snapshot()["batch_size"]["histogram"] == {"3": 1}

    def test_samples_exposes_the_reservoir(self):
        histogram = LatencyHistogram(max_samples=3)
        for value in (0.004, 0.001, 0.002, 0.003):
            histogram.record(value)
        # Sliding window: the oldest observation fell out, order preserved.
        assert histogram.samples() == (0.001, 0.002, 0.003)

    def test_merged_classmethod_is_lossless_and_pure(self):
        shards = [LatencyHistogram(max_samples=4) for _ in range(3)]
        for i, histogram in enumerate(shards):
            for value in range(1, 5):
                histogram.record((10 * i + value) / 1e3)
        merged = LatencyHistogram.merged(shards)
        # Lossless: every resident sample survives (instance merge() would
        # have truncated 12 samples into one shard's 4-slot reservoir)...
        assert len(merged.samples()) == 12
        # ...and pure: the inputs are untouched.
        assert all(len(h.samples()) == 4 for h in shards)
        # Percentiles equal those of one reservoir that saw all samples.
        reference = LatencyHistogram(max_samples=12)
        for histogram in shards:
            for value in histogram.samples():
                reference.record(value)
        assert merged.summary() == reference.summary()

    def test_cluster_percentiles_match_a_single_merged_reservoir(self):
        """Regression: cluster p50/p95/p99 must come from the merged shard
        reservoirs, exactly — not from averaging per-shard summaries."""
        registry, model_ids = _fleet(tenants=6)
        requests = _stream(model_ids, requests=30)
        with ClusterService(
            ClusterConfig(shards=3, cache_capacity=2), registry=registry
        ) as cluster:
            cluster.predict_batch(requests, timeout=30)
            stats = cluster.stats()
            shard_samples = [
                cluster._workers[sid].telemetry.latency.samples()
                for sid in sorted(cluster._workers)
            ]
            merged = cluster.merged_latency()

        reference = LatencyHistogram(max_samples=len(requests))
        for samples in shard_samples:
            for value in samples:
                reference.record(value)
        assert reference.count == len(requests)
        assert merged.summary() == reference.summary()
        assert stats["totals"]["latency"] == reference.summary()
        # The merged percentiles are genuine order statistics of the pooled
        # samples — p99 sits between the pooled p50 and the pooled max.
        latency = stats["totals"]["latency"]
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"] <= latency["max_ms"] + 1e-9
