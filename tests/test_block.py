"""Tests for coarse-grained block sparsity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsity.block import (
    BlockGrid,
    block_mask_from_keep,
    block_scores,
    partition_into_blocks,
    retained_blocks_per_row,
    topk_block_mask,
    uniform_block_mask,
)
from repro.sparsity.masks import check_block_uniformity, density


class TestBlockGrid:
    def test_exact_division(self):
        grid = BlockGrid(16, 32, 8)
        assert grid.block_rows == 2 and grid.block_cols == 4
        assert grid.num_blocks == 8
        assert grid.padded_shape == (16, 32)

    def test_padding_needed(self):
        grid = BlockGrid(10, 10, 4)
        assert grid.block_rows == 3 and grid.block_cols == 3
        assert grid.padded_shape == (12, 12)

    def test_invalid(self):
        with pytest.raises(ValueError):
            BlockGrid(0, 4, 2)
        with pytest.raises(ValueError):
            BlockGrid(4, 4, 0)

    def test_for_matrix(self, rng):
        grid = BlockGrid.for_matrix(rng.random((7, 9)), 4)
        assert (grid.rows, grid.cols) == (7, 9)

    def test_for_matrix_requires_2d(self, rng):
        with pytest.raises(ValueError):
            BlockGrid.for_matrix(rng.random(5), 2)


class TestPartition:
    def test_tiles_shape_and_content(self):
        matrix = np.arange(16).reshape(4, 4).astype(float)
        tiles, grid = partition_into_blocks(matrix, 2)
        assert tiles.shape == (2, 2, 2, 2)
        np.testing.assert_allclose(tiles[0, 0], [[0, 1], [4, 5]])
        np.testing.assert_allclose(tiles[1, 1], [[10, 11], [14, 15]])

    def test_padding(self):
        matrix = np.ones((3, 5))
        tiles, grid = partition_into_blocks(matrix, 4)
        assert tiles.shape == (1, 2, 4, 4)
        assert tiles[0, 0].sum() == 3 * 4  # 3 real rows, 4 real cols
        assert tiles[0, 1].sum() == 3 * 1


class TestBlockScores:
    def test_sums_absolute_values(self):
        matrix = np.array([[1.0, -2.0], [3.0, 4.0]])
        scores, grid = block_scores(matrix, 2)
        assert scores.shape == (1, 1)
        assert scores[0, 0] == pytest.approx(10.0)

    def test_per_block_separation(self):
        matrix = np.zeros((4, 4))
        matrix[:2, :2] = 1.0
        matrix[2:, 2:] = 5.0
        scores, _ = block_scores(matrix, 2)
        np.testing.assert_allclose(scores, [[4.0, 0.0], [0.0, 20.0]])


class TestBlockMaskFromKeep:
    def test_expansion(self):
        grid = BlockGrid(4, 4, 2)
        keep = np.array([[1.0, 0.0], [0.0, 1.0]])
        mask = block_mask_from_keep(keep, grid)
        np.testing.assert_allclose(mask[:2, :2], 1.0)
        np.testing.assert_allclose(mask[:2, 2:], 0.0)

    def test_crops_padding(self):
        grid = BlockGrid(3, 5, 4)
        keep = np.ones((1, 2))
        mask = block_mask_from_keep(keep, grid)
        assert mask.shape == (3, 5)

    def test_wrong_shape_raises(self):
        grid = BlockGrid(4, 4, 2)
        with pytest.raises(ValueError):
            block_mask_from_keep(np.ones((3, 3)), grid)


class TestTopkBlockMask:
    def test_keep_ratio(self, rng):
        scores = rng.random((16, 16))
        mask = topk_block_mask(scores, 4, keep_ratio=0.5)
        assert density(mask) == pytest.approx(0.5)

    def test_keeps_highest_scoring_blocks(self):
        scores = np.zeros((4, 4))
        scores[:2, :2] = 10.0
        mask = topk_block_mask(scores, 2, keep_ratio=0.25)
        np.testing.assert_allclose(mask[:2, :2], 1.0)
        assert mask.sum() == 4

    def test_invalid_ratio(self, rng):
        with pytest.raises(ValueError):
            topk_block_mask(rng.random((4, 4)), 2, keep_ratio=0.0)

    def test_not_necessarily_uniform(self):
        scores = np.zeros((4, 8))
        scores[:2] = [[9, 9, 1, 1, 9, 9, 1, 1], [9, 9, 1, 1, 9, 9, 1, 1]]
        mask = topk_block_mask(scores, 2, keep_ratio=0.25)
        # All kept blocks land in the first block-row -> non-uniform.
        assert not check_block_uniformity(mask, 2)


class TestUniformBlockMask:
    def test_keeps_k_blocks_per_row(self, rng):
        scores = rng.random((8, 16))
        mask = uniform_block_mask(scores, 4, keep_blocks_per_row=2)
        assert check_block_uniformity(mask, 4)
        assert retained_blocks_per_row(mask, 4) == [2, 2]
        assert density(mask) == pytest.approx(0.5)

    def test_selects_highest_scoring_blocks_per_row(self):
        scores = np.zeros((2, 8))
        scores[:, 2:4] = 5.0  # second block of the single block-row
        mask = uniform_block_mask(scores, 2, keep_blocks_per_row=1)
        np.testing.assert_allclose(mask[:, 2:4], 1.0)
        assert mask.sum() == 4

    def test_invalid_keep_count(self, rng):
        scores = rng.random((4, 8))
        with pytest.raises(ValueError):
            uniform_block_mask(scores, 4, keep_blocks_per_row=0)
        with pytest.raises(ValueError):
            uniform_block_mask(scores, 4, keep_blocks_per_row=3)

    @given(st.integers(1, 4), st.integers(1, 6), st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_property_uniform_rows(self, block_rows, block_cols, block_size):
        rng = np.random.default_rng(block_rows * 100 + block_cols * 10 + block_size)
        scores = rng.random((block_rows * block_size, block_cols * block_size))
        keep = rng.integers(1, block_cols + 1)
        mask = uniform_block_mask(scores, block_size, keep_blocks_per_row=int(keep))
        assert check_block_uniformity(mask, block_size)
        assert density(mask) == pytest.approx(keep / block_cols)


class TestRetainedBlocksPerRow:
    def test_counts(self):
        mask = np.zeros((4, 8))
        mask[:2, :2] = 1.0
        mask[2:, 2:4] = 1.0
        mask[2:, 6:] = 1.0
        assert retained_blocks_per_row(mask, 2) == [1, 2]
