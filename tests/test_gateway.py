"""Behaviour of the Serving API v2 gateway: backends, middleware, transports.

The headline invariants:

* predictions through the loopback transport, the HTTP transport and the
  direct facades are **bit-exact** on a seeded workload;
* a rate-limited tenant receives ``RESOURCE_EXHAUSTED`` — never a hang and
  never a bare exception — under a bursty replay;
* every facade (service, cluster, gateway) emits the unified
  latency/cache/queue/errors stats schema.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterService
from repro.cluster.telemetry import assert_stats_schema
from repro.errors import (
    ApiError,
    DeadlineExceededError,
    InvalidArgumentError,
    NotFoundError,
    ResourceExhaustedError,
    UnavailableError,
)
from repro.gateway import (
    ApiRequest,
    ClusterBackend,
    Gateway,
    GatewayClient,
    GatewayConfig,
    LocalBackend,
    LoopbackTransport,
    RetryMiddleware,
    ServingAPI,
    as_serving_api,
    serve_http,
)
from repro.loadgen import (
    DriverConfig,
    LoadDriver,
    build_scenario,
    synthetic_fleet,
    FLEET_INPUT_SHAPE,
)
from repro.serve import PersonalizationService, ServiceConfig
from repro.serve.types import PredictRequest

TENANTS = 3


@pytest.fixture(scope="module")
def fleet():
    registry, model_ids = synthetic_fleet(tenants=TENANTS, seed=0)
    return registry, model_ids


@pytest.fixture()
def batch():
    rng = np.random.default_rng(7)
    return rng.standard_normal((2, *FLEET_INPUT_SHAPE))


@pytest.fixture()
def cluster(fleet):
    registry, _ = fleet
    with ClusterService(ClusterConfig(shards=2), registry=registry) as service:
        yield service


class TestBackendAdapters:
    def test_as_serving_api_adapts_both_facades(self, fleet, cluster):
        registry, _ = fleet
        single = PersonalizationService(ServiceConfig(), registry=registry)
        assert isinstance(as_serving_api(single), LocalBackend)
        assert isinstance(as_serving_api(cluster), ClusterBackend)
        backend = LocalBackend(single)
        assert as_serving_api(backend) is backend
        with pytest.raises(TypeError):
            as_serving_api(object())

    def test_local_backend_predicts_and_reports(self, fleet, batch):
        registry, model_ids = fleet
        backend = LocalBackend(PersonalizationService(ServiceConfig(), registry=registry))
        response = backend.predict(PredictRequest(model_ids[0], batch))
        assert response.ok and response.model_id == model_ids[0]
        assert backend.health()["status"] == "ok"
        assert backend.model_ids() == model_ids
        assert_stats_schema(backend.stats())

    def test_local_backend_maps_unknown_model(self, fleet, batch):
        registry, _ = fleet
        backend = LocalBackend(PersonalizationService(ServiceConfig(), registry=registry))
        with pytest.raises(NotFoundError) as excinfo:
            backend.predict(PredictRequest("ghost", batch))
        assert excinfo.value.code == "NOT_FOUND"

    def test_cluster_backend_partial_batch(self, fleet, cluster, batch):
        _, model_ids = fleet
        backend = ClusterBackend(cluster)
        results = backend.predict_batch(
            [PredictRequest(model_ids[0], batch), PredictRequest("ghost", batch)]
        )
        assert results[0].ok and np.array_equal(
            results[0].classes, results[0].logits.argmax(axis=1)
        )
        assert isinstance(results[1], NotFoundError)

    def test_cluster_backend_shutdown_is_unavailable(self, fleet, batch):
        registry, model_ids = fleet
        service = ClusterService(ClusterConfig(shards=2), registry=registry)
        backend = ClusterBackend(service)
        backend.close()
        with pytest.raises(UnavailableError) as excinfo:
            backend.predict(PredictRequest(model_ids[0], batch))
        assert excinfo.value.code == "UNAVAILABLE"


class TestTransportParity:
    def test_loopback_http_and_direct_are_bit_exact(self, fleet, cluster):
        """The acceptance invariant: one workload, three paths, same bits."""
        _, model_ids = fleet
        rng = np.random.default_rng(11)
        batches = [
            (model_ids[i % TENANTS], rng.standard_normal((1, *FLEET_INPUT_SHAPE)))
            for i in range(6)
        ]
        direct = [cluster.predict(m, b) for m, b in batches]

        gateway = Gateway(ClusterBackend(cluster))
        loopback = GatewayClient(LoopbackTransport(gateway))
        via_loopback = [loopback.predict(m, b) for m, b in batches]

        with serve_http(gateway) as server:
            with GatewayClient(server.transport()) as http_client:
                via_http = [http_client.predict(m, b) for m, b in batches]

        single = PersonalizationService(ServiceConfig(), registry=fleet[0])
        via_local = [
            LocalBackend(single).predict(PredictRequest(m, b)) for m, b in batches
        ]

        for d, lb, ht, lc in zip(direct, via_loopback, via_http, via_local):
            assert np.array_equal(d.logits, lb.logits)
            assert np.array_equal(d.logits, ht.logits)
            assert np.array_equal(d.logits, lc.logits)
            assert d.logits.dtype == ht.logits.dtype == np.float64

    def test_http_server_surface(self, fleet, cluster):
        gateway = Gateway(ClusterBackend(cluster))
        with serve_http(gateway) as server:
            assert server.port > 0
            client = GatewayClient(server.transport())
            health = client.health()
            assert health["status"] == "ok" and health["shards"] == 2
            # Unknown paths answer a structured envelope, not a stack trace.
            import http.client as hc

            conn = hc.HTTPConnection(server.host, server.port, timeout=10)
            conn.request("GET", "/nope")
            response = conn.getresponse()
            assert response.status == 400
            response.read()
            # A bad-path POST with a body must not poison the keep-alive
            # connection: the handler drains the body before replying.
            body = b'{"method":"health"}'
            conn.request("POST", "/v1", body=body,
                         headers={"Content-Type": "application/json"})
            bad_path = conn.getresponse()
            assert bad_path.status == 400
            bad_path.read()
            conn.request("POST", "/v2", body=body,
                         headers={"Content-Type": "application/json"})
            follow_up = conn.getresponse()
            assert follow_up.status == 200
            conn.close()

    def test_http_transport_unreachable_is_unavailable(self, fleet, cluster):
        gateway = Gateway(ClusterBackend(cluster))
        server = serve_http(gateway)
        port = server.port
        server.stop()
        client = GatewayClient(server.transport(timeout_s=1.0))
        with pytest.raises(UnavailableError):
            client.health()


class TestMiddleware:
    def test_rate_limited_tenant_gets_resource_exhausted(self, fleet, cluster, batch):
        _, model_ids = fleet
        gateway = Gateway(
            ClusterBackend(cluster), GatewayConfig(rate_per_s=1.0, burst=2)
        )
        hot = GatewayClient(LoopbackTransport(gateway), tenant="hot")
        cold = GatewayClient(LoopbackTransport(gateway), tenant="cold")
        outcomes = []
        for _ in range(6):
            try:
                hot.predict(model_ids[0], batch)
                outcomes.append("ok")
            except ResourceExhaustedError as exc:
                assert exc.details["tenant"] == "hot"
                assert exc.details["retry_after_ms"] >= 0
                outcomes.append("limited")
        assert outcomes.count("ok") == 2  # the burst
        assert outcomes.count("limited") == 4
        # Per-tenant isolation: the cold tenant's bucket is untouched.
        assert cold.predict(model_ids[1], batch).ok
        assert gateway.rate_limiter.snapshot()["limited"] == 4

    def test_oversize_batch_is_unsatisfiable_not_throttled(self):
        from repro.gateway import RateLimitMiddleware

        middleware = RateLimitMiddleware(rate_per_s=10)  # burst defaults to 10
        request = ApiRequest(
            "predict_batch", {"requests": [{"i": i} for i in range(16)]}
        )
        # cost > burst can never succeed by waiting: a non-retryable
        # INVALID_ARGUMENT, never a finite retry_after_ms loop.
        with pytest.raises(InvalidArgumentError):
            middleware.handle(request, lambda r: None)

    def test_quota_exhaustion(self, fleet, cluster, batch):
        _, model_ids = fleet
        gateway = Gateway(ClusterBackend(cluster), GatewayConfig(quota=3))
        client = GatewayClient(LoopbackTransport(gateway))
        for _ in range(3):
            client.predict(model_ids[0], batch)
        with pytest.raises(ResourceExhaustedError) as excinfo:
            client.predict(model_ids[0], batch)
        assert excinfo.value.details["quota"] == 3

    def test_deadline_spent_never_dispatches(self, fleet, cluster, batch):
        _, model_ids = fleet
        gateway = Gateway(ClusterBackend(cluster))
        client = GatewayClient(LoopbackTransport(gateway))
        with pytest.raises(DeadlineExceededError):
            client.predict(model_ids[0], batch, deadline_ms=0)
        # A generous deadline passes through.
        assert client.predict(model_ids[0], batch, deadline_ms=60_000).ok

    def test_retry_recovers_from_transient_unavailability(self, fleet, batch):
        registry, model_ids = fleet

        class Flaky(LocalBackend):
            def __init__(self, service, failures):
                super().__init__(service)
                self.remaining = failures
                self.calls = 0

            def predict(self, request, timeout=None):
                self.calls += 1
                if self.remaining > 0:
                    self.remaining -= 1
                    raise UnavailableError("transient blip")
                return super().predict(request, timeout)

        flaky = Flaky(PersonalizationService(ServiceConfig(), registry=registry), 2)
        gateway = Gateway(flaky, GatewayConfig(max_attempts=3, retry_base_delay_s=0.0))
        client = GatewayClient(LoopbackTransport(gateway))
        assert client.predict(model_ids[0], batch).ok
        assert flaky.calls == 3
        assert gateway.retry.snapshot()["retries"] == 2

        # One more failure than the budget: the UNAVAILABLE surfaces.
        flaky.remaining = 3
        with pytest.raises(UnavailableError):
            client.predict(model_ids[0], batch)

    def test_retry_backoff_is_charged_against_the_deadline(self, fleet, batch):
        """Backoff sleeps spend the budget: a deadlined call ends as
        DEADLINE_EXCEEDED promptly instead of retrying past its budget."""
        registry, model_ids = fleet

        class AlwaysDown(LocalBackend):
            def predict(self, request, timeout=None):
                raise UnavailableError("down")

        backend = AlwaysDown(PersonalizationService(ServiceConfig(), registry=registry))
        gateway = Gateway(
            backend, GatewayConfig(max_attempts=5, retry_base_delay_s=0.2)
        )
        client = GatewayClient(LoopbackTransport(gateway))
        import time as _time

        start = _time.perf_counter()
        with pytest.raises(DeadlineExceededError):
            client.predict(model_ids[0], batch, deadline_ms=5)
        assert (_time.perf_counter() - start) < 1.0  # not 5 x 200ms backoffs

    def test_metrics_record_the_code_the_caller_sees(self, fleet, cluster):
        """Raw exceptions escaping the router count under their mapped code."""
        gateway = Gateway(ClusterBackend(cluster))
        bad = gateway.handle(
            ApiRequest("predict", {"model_id": "x", "inputs": [[1.0]]})
        )
        assert bad.error["code"] == "INVALID_ARGUMENT"  # 1D inputs
        snapshot = gateway.metrics.snapshot()
        assert snapshot["errors"]["by_code"] == {"INVALID_ARGUMENT": 1}

    def test_retry_never_touches_non_retryable(self):
        calls = []

        def terminal(request):
            calls.append(request.method)
            raise ResourceExhaustedError("limited")

        middleware = RetryMiddleware(max_attempts=5, base_delay_s=0.0)
        with pytest.raises(ResourceExhaustedError):
            middleware.handle(ApiRequest("predict"), terminal)
        assert len(calls) == 1

    def test_validation_rejects_bad_envelopes(self, fleet, cluster):
        gateway = Gateway(ClusterBackend(cluster))
        wrong_version = gateway.handle(
            ApiRequest("health", version="v1")
        )
        assert not wrong_version.ok
        assert wrong_version.error["code"] == "INVALID_ARGUMENT"
        unknown = gateway.handle(ApiRequest("teleport"))
        assert unknown.error["code"] == "NOT_FOUND"
        missing = gateway.handle(ApiRequest("predict", {"model_id": "x"}))
        assert missing.error["code"] == "INVALID_ARGUMENT"
        garbage = gateway.handle_envelope(b"\xff\xfe not json")
        assert not garbage.ok

    def test_metrics_see_every_outcome(self, fleet, cluster, batch):
        _, model_ids = fleet
        gateway = Gateway(ClusterBackend(cluster))
        client = GatewayClient(LoopbackTransport(gateway))
        client.predict(model_ids[0], batch)
        with pytest.raises(NotFoundError):
            client.predict("ghost", batch)
        snapshot = gateway.metrics.snapshot()
        route = snapshot["per_route"]["predict"]
        assert route["requests"] == 2
        assert route["errors"] == {"NOT_FOUND": 1}
        assert snapshot["errors"]["failed"] == 1
        assert snapshot["latency"]["count"] == 2


class TestGatewayRoutes:
    def test_stats_schema_everywhere(self, fleet, cluster, batch):
        registry, model_ids = fleet
        single = PersonalizationService(ServiceConfig(), registry=registry)
        single.predict(model_ids[0], batch)
        assert_stats_schema(single.stats())
        assert_stats_schema(cluster.stats())
        gateway = Gateway(ClusterBackend(cluster))
        stats = gateway.stats()
        assert_stats_schema(stats)
        assert "per_route" in stats["gateway"]

    def test_stats_schema_helper_rejects_drift(self):
        with pytest.raises(AssertionError, match="latency"):
            assert_stats_schema({"cache": {}, "queue": {}, "errors": {}})
        with pytest.raises(AssertionError, match="hit_rate"):
            assert_stats_schema(
                {
                    "latency": {"count": 0, "mean_ms": 0, "max_ms": 0},
                    "cache": {"hits": 0, "misses": 0, "evictions": 0},
                    "queue": {"pending": 0, "max_depth": 0},
                    "errors": {"failed": 0, "rejected": 0},
                }
            )

    def test_stats_and_drain_routes(self, fleet, cluster):
        gateway = Gateway(ClusterBackend(cluster))
        client = GatewayClient(LoopbackTransport(gateway))
        client.health()
        stats = client.stats()
        assert stats["models"] == TENANTS
        # The snapshot is taken inside the stats call, so it sees every
        # *prior* route invocation (its own recording lands afterwards).
        assert set(stats["gateway"]["per_route"]) >= {"health"}
        client.drain()  # must not raise

    def test_duplicate_ids_surface_invalid_argument(self, fleet, cluster, batch):
        _, model_ids = fleet
        backend = ClusterBackend(cluster)
        results = backend.predict_batch(
            [
                PredictRequest(model_ids[0], batch, request_id="dup"),
                PredictRequest(model_ids[0], batch, request_id="dup"),
            ]
        )
        errors = [r for r in results if isinstance(r, ApiError)]
        assert len(errors) == 1
        assert errors[0].code == "INVALID_ARGUMENT"
        # The scheduler's own raise keeps the legacy ValueError contract.
        assert isinstance(errors[0], ValueError)


class TestLoadgenThroughGateway:
    def _workload(self, model_ids, requests=10):
        return build_scenario("steady-uniform", requests=requests).synthesize(
            model_ids, seed=0
        )

    def test_driver_digest_is_transport_invariant(self, fleet, cluster):
        _, model_ids = fleet
        workload = self._workload(model_ids)
        config = DriverConfig(time_scale=0.0)

        local_report = LoadDriver(ClusterBackend(cluster), config).run(workload)
        gateway = Gateway(ClusterBackend(cluster))
        loopback_report = LoadDriver(
            GatewayClient(LoopbackTransport(gateway)), config
        ).run(self._workload(model_ids))
        with serve_http(gateway) as server:
            http_report = LoadDriver(
                GatewayClient(server.transport()), config
            ).run(self._workload(model_ids))

        assert local_report.completed == loopback_report.completed == 10
        assert http_report.completed == 10
        assert (
            local_report.predictions_digest()
            == loopback_report.predictions_digest()
            == http_report.predictions_digest()
        )
        assert local_report.hung == loopback_report.hung == http_report.hung == 0
        # Wire replays keep the cluster's own telemetry in the report: the
        # remote shard count and the merged-reservoir latency block survive
        # the transport instead of degrading to a shardless view.
        assert http_report.shards == 2
        assert http_report.cluster_stats is not None
        assert "totals" in http_report.cluster_stats
        assert http_report.observed_per_shard()  # per-shard completions

    def test_bursty_rate_limited_tenant_sheds_cleanly(self, fleet, cluster):
        """Acceptance: RESOURCE_EXHAUSTED under burst — no hang, no raw error."""
        _, model_ids = fleet
        workload = build_scenario("zipf-burst", requests=24).synthesize(
            model_ids, seed=0
        )
        gateway = Gateway(
            ClusterBackend(cluster), GatewayConfig(rate_per_s=5.0, burst=4)
        )
        client = GatewayClient(LoopbackTransport(gateway))
        report = LoadDriver(client, DriverConfig(time_scale=0.0)).run(workload)
        assert report.requests == 24
        assert report.hung == 0 and report.failed == 0
        assert report.rejected >= 1  # the burst tripped the bucket
        assert report.completed + report.rejected == 24
        limited = gateway.rate_limiter.snapshot()["limited"]
        assert limited == report.rejected
