"""Tests for the CRISP pruning framework (Algorithm 1)."""

import numpy as np
import pytest

from repro.nn.models.base import prunable_layers
from repro.pruning import CRISPConfig, CRISPPruner, crisp_prune, model_sparsity
from repro.sparsity.masks import check_block_uniformity, check_nm_compliance


TINY_CRISP = dict(n=2, m=4, block_size=8, iterations=2, finetune_epochs=1, saliency_batches=2)


class TestCRISPConfig:
    def test_defaults_valid(self):
        cfg = CRISPConfig()
        assert cfg.nm_base_sparsity == pytest.approx(0.5)
        assert cfg.hybrid.block_size == cfg.block_size

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            CRISPConfig(target_sparsity=1.0)

    def test_invalid_pattern(self):
        with pytest.raises(ValueError):
            CRISPConfig(n=5, m=4)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            CRISPConfig(iterations=0)

    def test_invalid_schedule(self):
        with pytest.raises(ValueError):
            CRISPConfig(schedule="exponential")

    def test_invalid_min_keep(self):
        with pytest.raises(ValueError):
            CRISPConfig(min_keep_blocks_per_row=0)

    def test_build_schedule_linear(self):
        cfg = CRISPConfig(n=2, m=4, target_sparsity=0.9, iterations=4)
        schedule = cfg.build_schedule()
        assert schedule.num_iterations == 4
        assert schedule.final_target == pytest.approx(0.9)
        assert schedule[0] >= 0.5  # starts at the N:M floor

    def test_build_schedule_one_shot(self):
        cfg = CRISPConfig(schedule="one_shot", target_sparsity=0.8)
        assert cfg.build_schedule().num_iterations == 1

    def test_target_below_nm_floor_allowed(self):
        cfg = CRISPConfig(n=2, m=4, target_sparsity=0.3, iterations=2)
        schedule = cfg.build_schedule()
        assert schedule.final_target == pytest.approx(0.3)


class TestCRISPPruner:
    def test_requires_prunable_layers(self):
        from repro.nn.module import Module

        class Empty(Module):
            def forward(self, x):
                return x

        with pytest.raises(ValueError):
            CRISPPruner(Empty())

    def test_end_to_end_reaches_target(self, tiny_resnet, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        config = CRISPConfig(target_sparsity=0.8, **TINY_CRISP)
        result = CRISPPruner(tiny_resnet, config).prune(train_loader, val_loader)

        assert result.iterations_run == config.iterations
        assert result.final_sparsity == pytest.approx(0.8, abs=0.05)
        assert result.baseline_accuracy is not None
        assert result.final_accuracy is not None
        assert 0.0 <= result.final_accuracy <= 1.0
        assert result.accuracy_drop is not None

    def test_masks_satisfy_structural_invariants(self, tiny_resnet, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        config = CRISPConfig(target_sparsity=0.8, **TINY_CRISP)
        CRISPPruner(tiny_resnet, config).prune(train_loader, val_loader)

        for name, layer in prunable_layers(tiny_resnet).items():
            assert layer.weight.mask is not None, f"{name} has no mask"
            c_out = layer.reshaped_weight().shape[1]
            mask2d = layer.weight.mask.reshape(c_out, -1).T
            assert check_nm_compliance(mask2d, config.n, config.m, axis=0), name
            assert check_block_uniformity(mask2d, config.block_size), name

    def test_history_records_progression(self, tiny_resnet, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        config = CRISPConfig(target_sparsity=0.85, **TINY_CRISP)
        result = CRISPPruner(tiny_resnet, config).prune(train_loader, val_loader)

        targets = [rec.target_sparsity for rec in result.history]
        achieved = [rec.achieved_sparsity for rec in result.history]
        assert targets == sorted(targets)
        assert achieved[-1] >= achieved[0] - 1e-9
        for record in result.history:
            assert set(record.layer_sparsity) == set(prunable_layers(tiny_resnet))
            assert record.val_accuracy is not None

    def test_layer_sparsity_nonuniform(self, tiny_resnet, tiny_loaders):
        """The global rank-position selection should allocate different
        sparsities to different layers (the Fig. 2 behaviour)."""
        train_loader, val_loader = tiny_loaders
        config = CRISPConfig(target_sparsity=0.85, **TINY_CRISP)
        result = CRISPPruner(tiny_resnet, config).prune(train_loader, val_loader)
        values = np.array(list(result.history[-1].layer_sparsity.values()))
        assert values.max() - values.min() > 0.05

    def test_every_row_keeps_at_least_one_block(self, tiny_resnet, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        config = CRISPConfig(target_sparsity=0.9, **TINY_CRISP)
        CRISPPruner(tiny_resnet, config).prune(train_loader, val_loader)
        from repro.sparsity.block import retained_blocks_per_row

        for name, layer in prunable_layers(tiny_resnet).items():
            c_out = layer.reshaped_weight().shape[1]
            mask2d = layer.weight.mask.reshape(c_out, -1).T
            counts = retained_blocks_per_row(mask2d, config.block_size)
            assert min(counts) >= 1, name

    def test_without_val_loader(self, tiny_resnet, tiny_loaders):
        train_loader, _ = tiny_loaders
        config = CRISPConfig(target_sparsity=0.75, **TINY_CRISP)
        result = CRISPPruner(tiny_resnet, config).prune(train_loader)
        assert result.final_accuracy is None
        assert result.baseline_accuracy is None
        assert result.final_sparsity > 0.6

    def test_without_ste(self, tiny_resnet, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        config = CRISPConfig(target_sparsity=0.75, use_ste=False, **TINY_CRISP)
        result = CRISPPruner(tiny_resnet, config).prune(train_loader, val_loader)
        assert result.final_sparsity == pytest.approx(0.75, abs=0.06)

    def test_convenience_wrapper(self, tiny_vgg, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        config = CRISPConfig(target_sparsity=0.75, **TINY_CRISP)
        result = crisp_prune(tiny_vgg, train_loader, val_loader, config)
        assert result.final_sparsity == pytest.approx(0.75, abs=0.06)

    def test_one_four_pattern_reaches_higher_sparsity(self, tiny_resnet, tiny_loaders):
        train_loader, _ = tiny_loaders
        config = CRISPConfig(
            n=1, m=4, block_size=8, target_sparsity=0.9, iterations=2,
            finetune_epochs=1, saliency_batches=2,
        )
        result = CRISPPruner(tiny_resnet, config).prune(train_loader)
        assert result.final_sparsity >= 0.85

    def test_masks_frozen_into_weights_after_prune(self, tiny_resnet, tiny_loaders):
        train_loader, _ = tiny_loaders
        config = CRISPConfig(target_sparsity=0.8, **TINY_CRISP)
        CRISPPruner(tiny_resnet, config).prune(train_loader)
        for layer in prunable_layers(tiny_resnet).values():
            pruned = layer.weight.mask == 0
            np.testing.assert_allclose(layer.weight.data[pruned], 0.0)

    def test_mobilenet_pruning(self, tiny_mobilenet, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        config = CRISPConfig(target_sparsity=0.75, **TINY_CRISP)
        result = CRISPPruner(tiny_mobilenet, config).prune(train_loader, val_loader)
        assert result.final_sparsity == pytest.approx(0.75, abs=0.08)
        assert model_sparsity(tiny_mobilenet) == pytest.approx(result.final_sparsity)
