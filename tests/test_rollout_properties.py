"""Seeded property tests for the versioned rollout plane.

Mirrors ``test_router_properties.py``: 50 seeded trials per invariant, each
drawing its inputs from ``np.random.default_rng(seed)``, checking

* the seeded hash split converges to the configured canary fraction and is
  a pure (byte-stable) function of ``(seed, tenant, request_id)``;
* shadow mode never lets the canary touch the primary response — at the
  table level (serve is always stable) and byte-wise through a real
  gateway stack;
* :meth:`RolloutTable.clear` (rollback) is atomic under concurrent
  requests: any decision started after ``clear`` returns serves stable.
"""

import threading

import numpy as np
import pytest

from repro.gateway.api import LocalBackend
from repro.gateway.gateway import Gateway, GatewayConfig
from repro.gateway.wire import ApiRequest
from repro.lifecycle import RolloutMiddleware, RolloutTable, split_arm
from repro.loadgen.popularity import ClassDriftPopularity
from repro.lifecycle.fleet import drift_fleet
from repro.serve.service import PersonalizationService, ServiceConfig

TRIALS = list(range(50))


class TestSplitConvergence:
    """The hash split is unbiased and deterministic."""

    @pytest.mark.parametrize("seed", TRIALS)
    def test_split_fraction_converges(self, seed):
        rng = np.random.default_rng(seed)
        fraction = float(rng.uniform(0.2, 0.8))
        tenant = f"tenant-{int(rng.integers(0, 1000))}"
        n = 400
        canary = sum(
            split_arm(seed, tenant, f"req-{i}", fraction) == "canary"
            for i in range(n)
        )
        # Binomial std at n=400 is <= 0.025; 0.12 is beyond 4 sigma.
        assert abs(canary / n - fraction) < 0.12

    @pytest.mark.parametrize("seed", TRIALS)
    def test_split_is_pure_and_seed_sensitive(self, seed):
        rng = np.random.default_rng(seed)
        fraction = float(rng.uniform(0.3, 0.7))
        tenant = f"tenant-{int(rng.integers(0, 1000))}"
        ids = [f"req-{int(rng.integers(0, 10_000))}" for _ in range(64)]
        arms = [split_arm(seed, tenant, rid, fraction) for rid in ids]
        assert arms == [split_arm(seed, tenant, rid, fraction) for rid in ids]
        # A different seed reshuffles at least one assignment.
        reshuffled = [split_arm(seed + 1, tenant, rid, fraction) for rid in ids]
        assert arms != reshuffled

    @pytest.mark.parametrize("seed", TRIALS)
    def test_decision_log_byte_stable_across_tables(self, seed):
        rng = np.random.default_rng(seed)
        ids = [f"req-{int(rng.integers(0, 10_000))}-{i}" for i in range(48)]
        logs = []
        for _ in range(2):
            table = RolloutTable()
            table.start("t", stable="t", canary="t@v2",
                        fraction=0.5, seed=seed)
            for rid in ids:
                table.decide("t", rid)
            logs.append(table.decision_log_jsonl())
        assert logs[0] == logs[1]


class TestShadowIsolation:
    """Shadow mode never changes what the user is served."""

    @pytest.mark.parametrize("seed", TRIALS)
    def test_shadow_decisions_always_serve_stable(self, seed):
        rng = np.random.default_rng(seed)
        fraction = float(rng.uniform(0.2, 0.9))
        table = RolloutTable()
        table.start("t", stable="t", canary="t@v2",
                    fraction=fraction, mode="shadow", seed=seed)
        shadowed = 0
        for i in range(128):
            decision = table.decide("t", f"req-{i}")
            assert decision.arm == "stable"
            assert decision.serve == "t"
            if decision.shadow is not None:
                assert decision.shadow == "t@v2"
                shadowed += 1
        assert 0 < shadowed < 128  # the hash actually split the stream

    def test_shadow_rollout_is_byte_invisible_through_gateway(self):
        """Primary logits with a shadow canary == logits with no rollout."""
        registry, (tenant,) = drift_fleet(
            ClassDriftPopularity(), tenants=1, seed=0
        )
        table = RolloutTable()
        service = PersonalizationService(
            ServiceConfig(cache_capacity=4), registry=registry
        )
        gateway = Gateway(
            LocalBackend(service),
            GatewayConfig(),
            middlewares=[RolloutMiddleware(table, resolve=registry.resolve)],
        )
        inputs = np.random.default_rng(0).normal(size=(1, 3, 12, 12)).tolist()

        def predict(request_id):
            response = gateway.handle(
                ApiRequest(
                    "predict",
                    {"model_id": tenant, "inputs": inputs},
                    request_id=request_id,
                    tenant=tenant,
                )
            )
            assert response.ok, response.error
            body = response.payload["response"]
            return (
                np.asarray(body["logits"], dtype=np.float64).tobytes(),
                body["model_id"],
            )

        ids = [f"req-{i}" for i in range(16)]
        baseline = [predict(rid) for rid in ids]

        v2 = registry.register_version(
            tenant, registry.materialize(tenant), metadata={"classes": [3, 4, 5]}
        )
        table.start(tenant, stable=tenant, canary=v2,
                    fraction=0.5, mode="shadow", seed=0)
        shadowed = [predict(rid) for rid in ids]
        assert shadowed == baseline
        assert all(served == tenant for _, served in shadowed)
        counts = table.counts()
        assert counts["shadow"] > 0 and counts["canary"] == 0


class TestRollbackAtomicity:
    """After clear() returns, no decision can route to the canary."""

    @pytest.mark.parametrize("seed", TRIALS)
    def test_clear_atomic_under_concurrent_decisions(self, seed):
        table = RolloutTable(log_decisions=False)
        table.start("t", stable="t", canary="t@v2", fraction=0.9, seed=seed)
        cleared = threading.Event()
        go = threading.Event()
        violations = []

        def worker(wid):
            go.wait()
            for i in range(200):
                after_clear = cleared.is_set()
                decision = table.decide("t", f"req-{wid}-{i}")
                # A decision STARTED after clear() returned must find no
                # entry; one that raced the clear may serve either side,
                # but can never be half-made (the table lock covers both).
                if after_clear and decision is not None:
                    violations.append(decision)

        threads = [
            threading.Thread(target=worker, args=(wid,)) for wid in range(4)
        ]
        for thread in threads:
            thread.start()
        go.set()
        table.clear("t")
        cleared.set()
        for thread in threads:
            thread.join()
        assert violations == []
        assert table.entry("t") is None

    @pytest.mark.parametrize("seed", TRIALS)
    def test_decisions_after_clear_seq_all_stable(self, seed):
        """Seq-ordered audit: every canary decision precedes the rollback."""
        table = RolloutTable()
        table.start("t", stable="t", canary="t@v2", fraction=0.9, seed=seed)
        stop = threading.Event()

        def hammer():
            i = 0
            while not stop.is_set():
                table.decide("t", f"bg-{i}")
                i += 1

        thread = threading.Thread(target=hammer)
        thread.start()
        while table.seq < 20:  # let some canary traffic through
            pass
        table.clear("t")
        cut = table.seq
        for i in range(50):
            assert table.decide("t", f"post-{i}") is None
        stop.set()
        thread.join()
        assert all(
            decision.serve == "t"
            for decision in table.decisions
            if decision.seq >= cut
        )
