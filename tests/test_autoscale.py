"""Deterministic tests for the closed-loop autoscaler.

The control loop is driven three ways, in increasing realism:

* **scripted** — an injectable clock and hand-built signal dicts against the
  thread-free :class:`FleetModel`, asserting the *exact* decision sequence
  (fire-after-hold, cooldown suppression, min/max clamps, deterministic
  victims) and that two identical scripts render byte-identical JSONL logs;
* **simulated** — the fluid-queue replay of named loadgen scenarios, where
  the whole payload must be a byte-stable pure function of its inputs and
  the autoscaled arm must beat the static fleet on shard-seconds;
* **live** — a real :class:`ClusterService` actuated by the same loop
  (ticks really add/drain shards, the ring stays consistent), plus the
  scaling-mutation race regression and the SLOMonitor alert hand-off.

No test here sleeps on telemetry: every sequence is exact and repeatable.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.autoscale import (
    ACTIONS,
    Autoscaler,
    FleetModel,
    ScalingPolicy,
    ScalingRule,
    default_policy,
    simulate_autoscaler,
    static_policy,
)
from repro.cluster import ClusterConfig, ClusterService
from repro.metrics import (
    MetricsRegistry,
    SLOMonitor,
    TelemetryPoller,
    queue_depth_sustained,
)
from repro.serve.types import PredictRequest


class FakeClock:
    """A settable clock: ``clock()`` returns whatever the test last set."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


def _pressure_policy(**overrides):
    """One scale-out rule with a 2-tick hold — the smallest debounced loop."""
    kwargs = dict(
        rules=(
            ScalingRule(
                name="pressure",
                signal="queue_per_shard",
                op=">=",
                threshold=4.0,
                action="scale_out",
                for_samples=2,
            ),
        ),
        min_shards=1,
        max_shards=4,
        cooldown_ticks=2,
    )
    kwargs.update(overrides)
    return ScalingPolicy(**kwargs)


HOT = {"queue_per_shard": 8.0}
COLD = {"queue_per_shard": 0.0}


class TestPolicyValidation:
    def test_rule_rejects_unknown_op_action_and_bad_holds(self):
        with pytest.raises(ValueError):
            ScalingRule("r", "s", "!=", 1.0, "scale_out")
        with pytest.raises(ValueError):
            ScalingRule("r", "s", ">", 1.0, "explode")
        with pytest.raises(ValueError):
            ScalingRule("r", "s", ">", 1.0, "scale_out", for_samples=0)
        with pytest.raises(ValueError):
            ScalingRule("r", "s", ">", 1.0, "scale_out", step=0)

    def test_policy_rejects_bad_bounds_and_duplicate_rules(self):
        with pytest.raises(ValueError):
            ScalingPolicy(min_shards=0)
        with pytest.raises(ValueError):
            ScalingPolicy(min_shards=4, max_shards=2)
        with pytest.raises(ValueError):
            ScalingPolicy(cooldown_ticks=-1)
        rule = ScalingRule("dup", "s", ">", 1.0, "scale_out")
        with pytest.raises(ValueError):
            ScalingPolicy(rules=(rule, rule))
        with pytest.raises(ValueError):
            ScalingPolicy(alert_actions={"some-alert": "panic"})

    def test_clamp_and_stock_policies(self):
        policy = ScalingPolicy(min_shards=2, max_shards=5)
        assert [policy.clamp(n) for n in (1, 2, 4, 5, 9)] == [2, 2, 4, 5, 5]
        stock = default_policy()
        assert stock.alert_actions == {"queue-depth-sustained": "scale_out"}
        assert {r.action for r in stock.rules} == set(ACTIONS)
        pinned = static_policy(3)
        assert (pinned.min_shards, pinned.max_shards, pinned.rules) == (3, 3, ())

    def test_autoscaler_rejects_targets_without_scaling_surface(self):
        with pytest.raises(TypeError):
            Autoscaler(object())


class TestDecisionSequence:
    """Exact scripted decision sequences on the thread-free FleetModel."""

    def test_fires_only_after_hold_then_cools_down_then_refires(self):
        fleet = FleetModel(1)
        scaler = Autoscaler(fleet, _pressure_policy(), clock=FakeClock())
        verdicts = []
        for tick in range(1, 7):
            verdicts.extend(d.action for d in scaler.tick(HOT, now=float(tick)))
        # tick1 holds (streak 1), tick2 fires 1->2 and opens a 2-tick
        # cooldown, tick4's re-fire is suppressed by it, tick6 applies again.
        assert verdicts == ["scale_out", "suppress", "scale_out"]
        assert [d.tick for d in scaler.decisions] == [2, 4, 6]
        assert fleet.shards == 3
        assert fleet.log == ["add:1", "add:2"]
        suppressed = scaler.decisions[1]
        assert suppressed.shards_before == suppressed.shards_after == 2
        assert "cooldown" in suppressed.reason

    def test_clamps_at_max_and_min(self):
        fleet = FleetModel(1)
        policy = _pressure_policy(max_shards=2, cooldown_ticks=0)
        scaler = Autoscaler(fleet, policy, clock=FakeClock())
        actions = []
        for tick in range(1, 8):
            actions.extend(d.action for d in scaler.tick(HOT, now=float(tick)))
        # 1->2 on tick 2; every later 2-tick streak completion hits the
        # ceiling (the 2-tick hold re-accumulates after each verdict).
        assert actions == ["scale_out", "clamp", "clamp"]
        assert [d.tick for d in scaler.decisions] == [2, 4, 6]
        assert fleet.shards == 2
        assert all(
            "max_shards" in d.reason for d in scaler.decisions if d.action == "clamp"
        )
        # And the floor, symmetrically.
        idle_policy = ScalingPolicy(
            rules=(
                ScalingRule("idle", "queue_per_shard", "<=", 0.5, "scale_in",
                            for_samples=1),
            ),
            min_shards=2, max_shards=4, cooldown_ticks=0,
        )
        scaler2 = Autoscaler(fleet, idle_policy, clock=FakeClock())
        [decision] = scaler2.tick(COLD, now=1.0)
        assert decision.action == "clamp" and "min_shards" in decision.reason
        assert fleet.shards == 2

    def test_scale_in_removes_highest_shard_id(self):
        fleet = FleetModel(3)  # ids 0, 1, 2
        policy = ScalingPolicy(
            rules=(
                ScalingRule("idle", "queue_per_shard", "<=", 0.5, "scale_in",
                            for_samples=1),
            ),
            min_shards=1, max_shards=4, cooldown_ticks=0,
        )
        scaler = Autoscaler(fleet, policy, clock=FakeClock())
        scaler.tick(COLD, now=1.0)
        scaler.tick(COLD, now=2.0)
        assert fleet.log == ["remove:2", "remove:1"]
        assert fleet.shard_ids() == [0]

    def test_missing_signal_resets_the_streak(self):
        fleet = FleetModel(1)
        scaler = Autoscaler(fleet, _pressure_policy(), clock=FakeClock())
        assert scaler.tick(HOT, now=1.0) == []
        assert scaler.tick({}, now=2.0) == []  # signal gone: streak resets
        assert scaler.tick(HOT, now=3.0) == []  # streak restarts at 1
        [decision] = scaler.tick(HOT, now=4.0)
        assert decision.action == "scale_out" and decision.tick == 4

    def test_rule_priority_order_breaks_ties(self):
        policy = ScalingPolicy(
            rules=(
                ScalingRule("out-first", "load", ">", 1.0, "scale_out",
                            for_samples=1),
                ScalingRule("in-second", "load", ">", 0.0, "scale_in",
                            for_samples=1),
            ),
            min_shards=1, max_shards=4, cooldown_ticks=0,
        )
        fleet = FleetModel(2)
        scaler = Autoscaler(fleet, policy, clock=FakeClock())
        [decision] = scaler.tick({"load": 2.0}, now=1.0)
        assert (decision.rule, decision.action) == ("out-first", "scale_out")

    def test_decision_log_is_byte_stable_across_identical_runs(self):
        script = [HOT, HOT, COLD, HOT, HOT, HOT, COLD, HOT, HOT]

        def run():
            scaler = Autoscaler(FleetModel(1), _pressure_policy(),
                                clock=FakeClock())
            for tick, signals in enumerate(script, start=1):
                scaler.tick(signals, now=float(tick))
            return scaler.decision_log_jsonl()

        first, second = run(), run()
        assert first and first == second
        for line in first.strip().splitlines():
            assert line == json.dumps(json.loads(line), sort_keys=True)


class TestSignalDerivation:
    def test_observe_derives_interval_burn_rate_from_deltas(self):
        fleet = FleetModel(1)
        policy = ScalingPolicy(
            rules=(
                ScalingRule("burn", "error_burn_rate", ">", 0.1, "scale_out",
                            for_samples=1),
            ),
            min_shards=1, max_shards=4, cooldown_ticks=0,
        )
        scaler = Autoscaler(fleet, policy, clock=FakeClock())

        def stats(count, failed, rejected, pending=0.0):
            return {
                "latency": {"count": count, "p99_ms": 10.0},
                "errors": {"failed": failed, "rejected": rejected},
                "queue": {"pending": pending},
                "shards": fleet.shards,
            }

        # First observation only sets the counter baseline: a long history
        # of failures must not read as a fresh outage.
        assert scaler.observe(stats(100, 50, 0), now=1.0) == []
        # No new bad outcomes since the baseline -> burn 0.
        assert scaler.observe(stats(110, 50, 0), now=2.0) == []
        # 5 of this interval's 10 outcomes were bad -> burn 0.5 -> fire.
        [decision] = scaler.observe(stats(115, 52, 3), now=3.0)
        assert decision.action == "scale_out"
        assert decision.value == pytest.approx(0.5)

    def test_signals_include_per_shard_queue(self):
        fleet = FleetModel(4)
        scaler = Autoscaler(fleet, _pressure_policy(), clock=FakeClock())
        signals = scaler.signals(
            {"queue": {"pending": 12.0}, "latency": {}, "errors": {},
             "shards": 4}
        )
        assert signals["queue_pending"] == 12.0
        assert signals["queue_per_shard"] == pytest.approx(3.0)
        assert signals["shards"] == 4.0


class TestSimulator:
    def test_same_seed_runs_are_byte_identical(self):
        kwargs = dict(scenario="diurnal-ramp", requests=160, seed=0,
                      policy=default_policy(min_shards=2, max_shards=4))
        first = json.dumps(simulate_autoscaler(**kwargs), sort_keys=True)
        second = json.dumps(simulate_autoscaler(**kwargs), sort_keys=True)
        assert first == second

    def test_diurnal_ramp_scales_out_and_beats_static_fleet(self):
        auto = simulate_autoscaler(
            "diurnal-ramp", requests=160, seed=0,
            policy=default_policy(min_shards=2, max_shards=4),
        )
        static = simulate_autoscaler(
            "diurnal-ramp", requests=160, seed=0, policy=static_policy(4)
        )
        assert auto["actions"].get("scale_out", 0) >= 1
        assert auto["drained"] and static["drained"]
        assert auto["shard_seconds"] < static["shard_seconds"]
        assert auto["peak_shards"] <= 4

    def test_shard_failure_scenario_survives_kill_and_heal(self):
        result = simulate_autoscaler(
            "shard-failure", requests=96, seed=1,
            policy=default_policy(min_shards=2, max_shards=4),
        )
        assert result["drained"]
        assert result["final_shards"] >= 2

    def test_rejects_closed_loop_scenarios_and_bad_knobs(self):
        with pytest.raises(ValueError):
            simulate_autoscaler("closed-loop")
        with pytest.raises(ValueError):
            simulate_autoscaler(tick_s=0.0)
        with pytest.raises(ValueError):
            simulate_autoscaler(service_rate=0.0)

    def test_fleet_model_mirrors_cluster_semantics(self):
        fleet = FleetModel(2)
        assert fleet.add_shard() == 2
        with pytest.raises(KeyError):
            fleet.remove_shard(99)
        fleet.remove_shard(2)
        fleet.remove_shard(1)
        with pytest.raises(ValueError):
            fleet.remove_shard(0)  # never below one shard


class TestPollerSubscription:
    class _Target:
        def __init__(self):
            self.calls = 0

        def stats(self):
            self.calls += 1
            return {
                "latency": {"count": self.calls, "mean_ms": 1.0, "max_ms": 2.0},
                "cache": {"hits": 0, "misses": 0, "evictions": 0, "hit_rate": 0.0},
                "queue": {"pending": 0, "max_depth": 0},
                "errors": {"failed": 0, "rejected": 0},
            }

    def test_subscribers_see_every_sample_after_recording(self):
        poller = TelemetryPoller(self._Target(), MetricsRegistry())
        seen = []
        poller.subscribe(lambda stats, t: seen.append((stats["latency"]["count"], t)))
        poller.sample(now=1.0)
        poller.sample(now=2.0)
        assert seen == [(1, 1.0), (2, 2.0)]

    def test_subscriber_failure_is_counted_not_propagated(self):
        poller = TelemetryPoller(self._Target(), MetricsRegistry())
        seen = []

        def boom(stats, t):
            raise RuntimeError("subscriber bug")

        poller.subscribe(boom)
        poller.subscribe(lambda stats, t: seen.append(t))
        assert poller.sample(now=1.0) is not None
        assert poller.poll_errors == 1
        assert seen == [1.0]  # later subscribers still ran


class TestAlertHandoff:
    """Satellite: SLOMonitor ``queue_depth_sustained`` -> exactly one
    scale-out per alert episode; the resolved transition re-arms it."""

    def _harness(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, (queue_depth_sustained(depth=64.0,
                                                              for_samples=3),))
        fleet = FleetModel(1)
        policy = ScalingPolicy(
            rules=(), min_shards=1, max_shards=4, cooldown_ticks=4,
            alert_actions={"queue-depth-sustained": "scale_out"},
        )
        scaler = Autoscaler(fleet, policy, clock=FakeClock()).wire(monitor)
        gauge = registry.gauge("queue_pending", "scripted fleet queue depth")
        return monitor, fleet, scaler, gauge

    def test_one_scale_out_per_sustained_window(self):
        monitor, fleet, scaler, gauge = self._harness()
        # Three consecutive samples at/above depth: fires on the third
        # evaluation and ONLY the third — the hand-off must not act per tick.
        for t in (1.0, 2.0, 3.0):
            gauge.set(100.0, t=t)
            monitor.evaluate(now=t)
        assert fleet.shards == 2
        assert [d.action for d in scaler.decisions] == ["scale_out"]
        # The violation persists: the monitor stays firing (no transition),
        # so the autoscaler must not fire again for the same episode.
        for t in (4.0, 5.0, 6.0):
            gauge.set(100.0, t=t)
            monitor.evaluate(now=t)
        assert fleet.shards == 2
        assert monitor.fired == 1

    def test_resolved_transition_rearms_the_handoff(self):
        monitor, fleet, scaler, gauge = self._harness()
        for t in (1.0, 2.0, 3.0):
            gauge.set(100.0, t=t)
            monitor.evaluate(now=t)
        assert fleet.shards == 2
        # The queue drains: the resolved transition produces no action but
        # re-arms the monitor's fire-once state machine.
        gauge.set(0.0, t=4.0)
        monitor.evaluate(now=4.0)
        assert fleet.shards == 2
        # A second sustained window is a new episode: exactly one more.
        for t in (5.0, 6.0, 7.0):
            gauge.set(100.0, t=t)
            monitor.evaluate(now=t)
        assert fleet.shards == 3
        assert [d.action for d in scaler.decisions] == ["scale_out", "scale_out"]
        assert fleet.log == ["add:1", "add:2"]
        assert monitor.fired == 2

    def test_unmapped_alerts_are_ignored(self):
        monitor, fleet, scaler, gauge = self._harness()
        scaler.policy = ScalingPolicy(rules=(), min_shards=1, max_shards=4)
        for t in (1.0, 2.0, 3.0):
            gauge.set(100.0, t=t)
            monitor.evaluate(now=t)
        assert fleet.shards == 1 and scaler.decisions == []


class TestLiveCluster:
    """The same loop actuating a real ClusterService."""

    def test_ticks_add_and_drain_real_shards(self):
        policy = ScalingPolicy(
            rules=(
                ScalingRule("hot", "queue_per_shard", ">=", 4.0, "scale_out",
                            for_samples=1),
                ScalingRule("idle", "queue_per_shard", "<=", 0.5, "scale_in",
                            for_samples=2),
            ),
            min_shards=1, max_shards=3, cooldown_ticks=0,
        )
        with ClusterService(ClusterConfig(shards=1, cache_capacity=2)) as cluster:
            scaler = Autoscaler(cluster, policy, clock=FakeClock())
            scaler.tick(HOT, now=1.0)
            scaler.tick(HOT, now=2.0)
            assert cluster.shards == 3
            assert cluster.shard_ids() == [0, 1, 2]
            assert sorted(cluster.router.shard_ids()) == [0, 1, 2]
            scaler.tick(COLD, now=3.0)
            scaler.tick(COLD, now=4.0)  # for_samples=2 -> drains shard 2
            assert cluster.shards == 2
            assert cluster.shard_ids() == [0, 1]
            assert sorted(cluster.router.shard_ids()) == [0, 1]
            # Fleet history: seeded (t=1, 1 shard) at the first tick, which
            # immediately scales -> the 1-shard epoch has zero width; then
            # 2 shards over [1,2), 3 over [2,4), 2 over [4,5).
            assert scaler.shard_seconds(until=5.0) == pytest.approx(
                2 * 1.0 + 3 * 2.0 + 2 * 1.0
            )

    def test_scaling_mutations_serialize_against_each_other(self):
        """Regression: concurrent add_shard + remove_shard (graceful drain)
        used to race the router ring; the scale lock serializes them."""
        from repro.loadgen import synthetic_fleet

        registry, model_ids = synthetic_fleet(tenants=4, seed=0)
        config = ClusterConfig(shards=3, cache_capacity=2, max_pending=256)
        errors = []
        with ClusterService(config, registry=registry) as cluster:
            stop = threading.Event()

            def churn():
                try:
                    for _ in range(6):
                        if stop.is_set():
                            return
                        shard_id = cluster.add_shard()
                        cluster.remove_shard(shard_id)
                except Exception as exc:  # pragma: no cover - the regression
                    errors.append(exc)

            threads = [threading.Thread(target=churn) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                rng = np.random.default_rng(0)
                futures = []
                for i in range(24):
                    inputs = rng.normal(size=(1, 3, 12, 12))
                    futures.append(
                        cluster.submit(
                            PredictRequest(model_ids[i % len(model_ids)],
                                           inputs, request_id=f"race-{i}")
                        )
                    )
                results = [f.result(timeout=30.0) for f in futures]
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30.0)
            assert not errors, f"scaling mutations raced: {errors!r}"
            assert all(not t.is_alive() for t in threads)
            # Every request resolved (ok or clean rejection), no hangs.
            assert all(r is not None for r in results)
            # The fleet is back at its base size and the ring agrees with
            # the shard map exactly.
            assert cluster.shards == 3
            assert cluster.shard_ids() == sorted(cluster.router.shard_ids())
