"""Engine lifecycle tests: attach/detach restoration and format refresh.

Covers the two serving-critical lifecycle properties: a detached engine must
leave the module exactly as it found it (context-manager protocol), and an
engine that outlives a re-pruning must not serve stale compressed weights
(``refresh_formats`` regression).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import Engine
from repro.nn.models import build_model
from repro.nn.models.base import prunable_layers
from repro.sparsity import nm_mask


@pytest.fixture
def model():
    return build_model("resnet_tiny", num_classes=4, input_size=12, seed=0)


@pytest.fixture
def batch(rng):
    return rng.normal(size=(3, 3, 12, 12))


def _forward_table(model):
    """Each prunable layer's instance-level forward override (None = class forward)."""
    return {
        name: layer.__dict__.get("forward")
        for name, layer in prunable_layers(model).items()
    }


class TestDetachRestoresForwards:
    def test_context_manager_restores_original_forwards(self, model, batch):
        model.eval()
        baseline = model(batch)
        before = _forward_table(model)

        with Engine(model, backend="fast", weight_format="csr") as engine:
            assert engine.attached
            during = _forward_table(model)
            # Every prunable layer's forward is rerouted while attached.
            assert all(during[name] is not before[name] for name in before)
            np.testing.assert_allclose(engine.predict(batch), baseline, atol=1e-8)

        assert not engine.attached
        after = _forward_table(model)
        assert after == before  # original (absent) overrides restored exactly
        np.testing.assert_allclose(model(batch), baseline, atol=1e-12)

    def test_detach_is_idempotent(self, model, batch):
        engine = Engine(model, backend="fast", weight_format="dense")
        engine.detach()
        engine.detach()
        model.eval()
        assert model(batch).shape == (3, 4)

    def test_reattach_after_detach(self, model, batch):
        engine = Engine(model, backend="fast", weight_format="csr")
        expected = engine.predict(batch)
        engine.detach()
        engine.attach()
        np.testing.assert_allclose(engine.predict(batch), expected, atol=1e-12)
        engine.detach()


class TestRefreshFormats:
    def test_stale_formats_after_repruning(self, model, batch):
        """Re-pruning while an engine is attached must require refresh_formats:
        the engine serves the old encoding until then (the stale-format
        hazard), and refresh brings it back in sync."""
        engine = Engine(model, backend="fast", weight_format="csr")
        stale = engine.predict(batch)

        # Re-prune: install 1:4 N:M masks on every prunable layer.
        for layer in prunable_layers(model).values():
            scores = np.abs(layer.reshaped_weight())
            layer.set_reshaped_mask(nm_mask(scores, 1, 4, axis=0))

        # Without refresh the engine still serves the pre-pruning encoding.
        np.testing.assert_allclose(engine.predict(batch), stale, atol=1e-12)

        engine.refresh_formats()
        refreshed = engine.predict(batch)
        assert not np.allclose(refreshed, stale)

        # The refreshed engine matches a fresh engine over the pruned module.
        engine.detach()
        fresh = Engine(model, backend="fast", weight_format="csr")
        np.testing.assert_allclose(fresh.predict(batch), refreshed, atol=1e-10)
        fresh.detach()

    def test_refresh_encodes_effective_weight(self, model, batch):
        """STE-style dense shadow weights must never leak into inference:
        the encoding uses data * mask, not data."""
        engine = Engine(model, backend="fast", weight_format="csr", attach=False)
        for layer in prunable_layers(model).values():
            scores = np.abs(layer.reshaped_weight())
            layer.set_reshaped_mask(nm_mask(scores, 2, 4, axis=0))
        # Perturb the masked-out entries of the dense shadow weights.
        for layer in prunable_layers(model).values():
            layer.weight.data = layer.weight.data + (1.0 - layer.weight.mask) * 7.0
        engine.refresh_formats()
        engine.attach()
        masked_pred = engine.predict(batch)
        engine.detach()

        model.apply_masks()  # hard-zero the shadow entries
        fresh = Engine(model, backend="fast", weight_format="csr")
        np.testing.assert_allclose(fresh.predict(batch), masked_pred, atol=1e-10)
        fresh.detach()
