"""Fault-injection regression tests: chaos against the sharded runtime.

The invariants under test are the serving runtime's failure contract:

* killing a shard mid-flight surfaces a *clean error* (a
  :class:`ShardKilledError`-failed future), never a hang — for requests
  already queued on the dead shard and for traffic that keeps arriving;
* healing (``remove_shard``) reroutes the dead shard's tenants and the
  rerouted predictions stay bit-exact with the unsharded service;
* a slowed shard backs up its queue until admission control sheds load
  with 503s, and recovers once restored;
* a poisoned engine-cache entry fails its batch cleanly and is rebuilt
  after eviction, again bit-exact;
* a full chaos scenario through the :class:`LoadDriver` ends with zero
  hung futures and a cluster-level merged p99 in the SLOReport.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterService, RejectedResponse, ShardKilledError
from repro.loadgen import (
    DriverConfig,
    FaultInjector,
    LoadDriver,
    PoisonedEngineError,
    build_scenario,
    synthetic_fleet,
)
from repro.serve import PersonalizationService, PredictRequest, ServiceConfig


def _stream(model_ids, requests=12, seed=0, batch=1, prefix="f"):
    rng = np.random.default_rng(seed)
    return [
        PredictRequest(
            model_ids[i % len(model_ids)],
            rng.normal(size=(batch, 3, 12, 12)),
            request_id=f"{prefix}-{i:04d}",
        )
        for i in range(requests)
    ]


class TestKillShard:
    def test_kill_fails_pending_futures_cleanly(self):
        """Queued work on a killed shard errors out instead of hanging."""
        registry, model_ids = synthetic_fleet(tenants=4, seed=0)
        cluster = ClusterService(
            ClusterConfig(shards=2), registry=registry, start=False
        )
        try:
            victim = cluster.worker_for(model_ids[0]).shard_id
            pending = [
                cluster.submit(r)
                for r in _stream([model_ids[0]], requests=4)
            ]
            cluster.kill_shard(victim)
            for future in pending:
                with pytest.raises(ShardKilledError, match="killed"):
                    future.result(timeout=5)
        finally:
            cluster.shutdown()

    def test_kill_mid_flight_with_live_workers(self):
        """A running shard dies under load: every future resolves, none hang."""
        registry, model_ids = synthetic_fleet(tenants=6, seed=0)
        with ClusterService(
            ClusterConfig(shards=3, flush_interval_s=0.01), registry=registry
        ) as cluster:
            injector = FaultInjector(cluster)
            futures = [cluster.submit(r) for r in _stream(model_ids, requests=18)]
            killed = injector.kill_shard(1)
            futures += [
                cluster.submit(r)
                for r in _stream(model_ids, requests=18, seed=1, prefix="g")
            ]
            resolved = ok = failed = 0
            for future in futures:
                try:
                    response = future.result(timeout=10)
                except ShardKilledError:
                    failed += 1
                else:
                    assert response.status == 200
                    ok += 1
                resolved += 1
            assert resolved == 36  # zero hung futures
            assert ok > 0
            # Post-kill traffic to the dead shard's tenants fails fast too.
            victim_tenant = next(
                m for m in model_ids if cluster.worker_for(m).shard_id == killed
            )
            start = time.monotonic()
            with pytest.raises(ShardKilledError):
                cluster.submit(_stream([victim_tenant], requests=1)[0]).result(timeout=5)
            assert time.monotonic() - start < 1.0

    def test_heal_reroutes_bit_exact_with_unsharded_service(self):
        """Satellite criterion: remove_shard + re-route keeps predictions
        bit-exact with the single-process service."""
        registry, model_ids = synthetic_fleet(tenants=6, seed=0)
        requests = _stream(model_ids, requests=12)
        single = PersonalizationService(ServiceConfig(cache_capacity=6), registry=registry)
        expected = single.predict_batch(requests)
        with ClusterService(ClusterConfig(shards=3), registry=registry) as cluster:
            injector = FaultInjector(cluster)
            injector.kill_shard(1)
            assert injector.heal_shard() is not None  # dead shard off the ring
            assert cluster.shards == 2
            responses = cluster.predict_batch(requests, timeout=30)
        for a, b in zip(expected, responses):
            assert b.status == 200
            np.testing.assert_array_equal(a.logits, b.logits)
            np.testing.assert_array_equal(a.classes, b.classes)

    def test_heal_on_a_one_shard_fleet_is_a_tolerant_no_op(self):
        """The chaos layer must not crash where the system cannot fail over."""
        registry, model_ids = synthetic_fleet(tenants=2, seed=0)
        with ClusterService(ClusterConfig(shards=1), registry=registry) as cluster:
            injector = FaultInjector(cluster)
            injector.kill_shard(0)
            assert injector.heal_shard() is None  # outage persists, no raise
            assert cluster.shards == 1
            with pytest.raises(ShardKilledError):
                cluster.submit(_stream(model_ids, requests=1)[0]).result(timeout=5)

    def test_kill_is_idempotent_and_validated(self):
        registry, _ = synthetic_fleet(tenants=2, seed=0)
        cluster = ClusterService(ClusterConfig(shards=2), registry=registry)
        try:
            cluster.kill_shard(0)
            cluster.kill_shard(0)  # idempotent
            with pytest.raises(KeyError):
                cluster.kill_shard(9)
        finally:
            cluster.shutdown()


class TestSlowShard:
    def test_slowdown_triggers_admission_control_and_recovers(self):
        registry, model_ids = synthetic_fleet(tenants=1, seed=0)
        with ClusterService(
            ClusterConfig(shards=1, max_pending=64, high_water=2, flush_interval_s=0.0),
            registry=registry,
        ) as cluster:
            injector = FaultInjector(cluster)
            injector.slow_shard(0, delay_s=0.05)
            futures = [cluster.submit(r) for r in _stream(model_ids, requests=12)]
            results = [f.result(timeout=30) for f in futures]
            rejected = [r for r in results if isinstance(r, RejectedResponse)]
            served = [r for r in results if not isinstance(r, RejectedResponse)]
            assert rejected, "backlog above high_water must shed load with 503s"
            assert all(r.status == 503 for r in rejected)
            assert all(r.status == 200 for r in served)
            injector.restore_shard(0)
            cluster.drain()
            # Restored shard serves normally again.
            response = cluster.predict(model_ids[0], _stream(model_ids)[0].inputs, timeout=10)
            assert response.status == 200


class TestPoisonCache:
    def test_poisoned_entry_fails_cleanly_then_rebuilds_bit_exact(self):
        registry, model_ids = synthetic_fleet(tenants=2, seed=0)
        request = _stream([model_ids[0]], requests=1)[0]
        single = PersonalizationService(ServiceConfig(cache_capacity=2), registry=registry)
        expected = single.predict(model_ids[0], request.inputs)
        with ClusterService(ClusterConfig(shards=2), registry=registry) as cluster:
            injector = FaultInjector(cluster)
            # Warm, then poison the live entry.
            assert cluster.predict(model_ids[0], request.inputs, timeout=10).status == 200
            injector.poison_cache(model_ids[0])
            future = cluster.submit(_stream([model_ids[0]], requests=1, seed=2)[0])
            with pytest.raises(PoisonedEngineError):
                future.result(timeout=10)
            # Heal: evict the poisoned entry; the rebuild serves correct bits.
            injector.heal_cache(model_ids[0])
            response = cluster.predict(model_ids[0], request.inputs, timeout=10)
            assert response.status == 200
            np.testing.assert_array_equal(response.logits, expected.logits)


class TestChaosScenarios:
    def test_shard_failure_scenario_end_to_end(self):
        """Acceptance criterion: a shard kill mid-run with zero hung futures
        and a cluster-level merged p99 in the SLOReport."""
        registry, model_ids = synthetic_fleet(tenants=6, seed=0)
        workload = build_scenario("shard-failure").synthesize(model_ids, seed=0)
        with ClusterService(
            ClusterConfig(shards=3, cache_capacity=2, max_pending=256), registry=registry
        ) as cluster:
            report = LoadDriver(cluster, DriverConfig(time_scale=1.0)).run(workload)
        assert report.hung == 0, "a shard kill must never strand a future"
        assert report.completed + report.failed + report.rejected == len(workload)
        assert report.completed > 0
        payload = report.to_dict(timing=True)
        assert payload["slo"]["cluster"]["latency"]["p99_ms"] >= 0.0
        assert {"kill_shard", "heal_shard"} == {
            e["action"] for e in payload["slo"]["fault_log"]
        }

    def test_slow_shard_scenario_recovers(self):
        registry, model_ids = synthetic_fleet(tenants=4, seed=0)
        workload = build_scenario("slow-shard", requests=24).synthesize(model_ids, seed=0)
        with ClusterService(
            ClusterConfig(shards=2, cache_capacity=2, max_pending=256, high_water=4),
            registry=registry,
        ) as cluster:
            report = LoadDriver(cluster).run(workload)
            # End-of-run hygiene: the injected slowdown was cleared.
            assert all(w.chaos_delay_s == 0.0 for w in cluster._workers.values())
        assert report.hung == 0
        assert report.completed + report.failed + report.rejected == 24

    def test_slow_shard_scenario_rejects_through_the_cli_runner(self):
        """Regression: the preset must genuinely trip admission control when
        run exactly the way the CLI runs it (scenario-declared high_water)."""
        from repro.experiments.loadgen_cli import LoadgenConfig, run_loadgen

        report, payload = run_loadgen(
            LoadgenConfig(scenario="slow-shard", shards=2, tenants=4)
        )
        assert report.hung == 0
        assert report.rejected > 0, "a slowed shard above high_water must 503"
        assert report.completed + report.rejected + report.failed == 48
        assert "outcomes" not in payload  # chaos counts stay measured-only

    def test_late_and_stall_skipped_faults_still_fire(self):
        """Regression: events past the last submission index must fire."""
        from repro.loadgen import FaultEvent, Scenario, ConstantRate, UniformPopularity

        scenario = Scenario(
            name="late-heal",
            arrivals=ConstantRate(rate=1000.0),
            popularity=UniformPopularity(),
            requests=8,
            faults=(
                FaultEvent(at_request=4, action="kill_shard", target=1),
                FaultEvent(at_request=100, action="heal_shard"),  # past the end
            ),
        )
        registry, model_ids = synthetic_fleet(tenants=4, seed=0)
        workload = scenario.synthesize(model_ids, seed=0)
        with ClusterService(ClusterConfig(shards=3), registry=registry) as cluster:
            report = LoadDriver(cluster).run(workload)
            assert cluster.shards == 2  # the late heal removed the corpse
        assert [e["action"] for e in report.fault_log] == ["kill_shard", "heal_shard"]
        assert report.hung == 0

    def test_cache_poison_scenario_heals(self):
        registry, model_ids = synthetic_fleet(tenants=4, seed=0)
        workload = build_scenario("cache-poison", requests=24).synthesize(model_ids, seed=0)
        with ClusterService(
            ClusterConfig(shards=2, cache_capacity=2, max_pending=256), registry=registry
        ) as cluster:
            report = LoadDriver(cluster).run(workload)
        assert report.hung == 0
        assert report.completed + report.failed + report.rejected == 24
        assert report.completed > 0
