"""Tests for repro.trace: request hop spans across every serving seam."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import trace as rtrace
from repro.cluster import ClusterConfig, ClusterService
from repro.cluster.telemetry import assert_stats_schema
from repro.gateway import ClusterBackend, Gateway, GatewayClient, LoopbackTransport
from repro.gateway.api import LocalBackend
from repro.gateway.wire import ApiRequest, ApiResponse
from repro.loadgen import synthetic_fleet
from repro.serve import PersonalizationService, PredictRequest
from repro.trace import HOPS, Span, Trace, trace_step


@pytest.fixture(autouse=True)
def clean_tracing():
    """Every test starts and ends with tracing off and an empty aggregator."""
    rtrace.disable()
    rtrace.reset_aggregator()
    yield
    rtrace.disable()
    rtrace.reset_aggregator()


def fleet_inputs(rng, n=2):
    return rng.normal(size=(n, 3, 12, 12)).astype(np.float64)


class TestTraceUnit:
    def test_off_by_default(self):
        assert not rtrace.enabled()
        assert rtrace.trace_block() is None

    def test_trace_accumulates_and_sums_per_hop(self):
        trace = Trace()
        trace.add("shard", 0.001)
        trace.add("shard", 0.002)
        trace.add("engine", 0.004)
        assert trace.hops() == ("shard", "engine")
        assert trace.hop_ms()["shard"] == pytest.approx(3.0)
        assert trace.hop_ms()["engine"] == pytest.approx(4.0)

    def test_wire_roundtrip(self):
        trace = Trace()
        trace.add("gateway", 0.5)
        trace.add("engine", 0.25)
        rebuilt = Trace.from_wire(json.loads(json.dumps(trace.to_wire())))
        assert rebuilt.spans == trace.spans

    def test_span_and_decorator_record_into_attached_trace(self):
        class Msg:
            trace = None

        msg = Msg()
        msg.trace = Trace()

        @trace_step("engine")
        def work(message):
            return 42

        with rtrace.tracing():
            assert work(msg) == 42
            with Span(msg.trace, "shard"):
                pass
        assert set(msg.trace.hops()) == {"engine", "shard"}

    def test_decorator_is_passthrough_when_disabled(self):
        calls = []

        @trace_step("engine")
        def work(message):
            calls.append(message)
            return "ok"

        assert work(object()) == "ok" and len(calls) == 1
        assert rtrace.trace_block() is None  # nothing aggregated

    def test_tracing_context_restores_previous_state(self):
        with rtrace.tracing():
            assert rtrace.enabled()
            with rtrace.tracing(False):
                assert not rtrace.enabled()
            assert rtrace.enabled()
        assert not rtrace.enabled()

    def test_trace_block_reports_hop_summaries(self):
        with rtrace.tracing():
            Trace().add("gateway", 0.01)
        block = rtrace.trace_block()
        assert block is not None and "gateway" in block["hops"]
        assert block["hops"]["gateway"]["count"] == 1

    def test_hops_are_canonical_names(self):
        assert HOPS == ("gateway", "middleware", "frontend", "shard", "engine", "service")


class TestWireStability:
    def test_untraced_envelopes_carry_no_trace_keys(self):
        request = ApiRequest(method="predict", payload={"x": 1}, request_id="r1")
        assert "trace" not in request.to_dict()
        response = ApiResponse.success(request, {"ok": True})
        assert "trace" not in response.to_dict()

    def test_traced_request_roundtrips_flag(self):
        request = ApiRequest(method="predict", payload={}, request_id="r1", trace=True)
        data = request.to_dict()
        assert data["trace"] is True
        assert ApiRequest.from_dict(data).trace is True

    def test_traced_response_roundtrips_spans(self):
        request = ApiRequest(method="predict", payload={}, request_id="r1")
        response = ApiResponse.success(request, {})
        response.trace = [["gateway", 0.5]]
        data = json.loads(response.to_json())
        assert data["trace"] == [["gateway", 0.5]]
        assert ApiResponse.from_dict(data).trace == [["gateway", 0.5]]

    def test_predict_messages_keep_trace_out_of_wire_dict(self, rng):
        request = PredictRequest("tenant-0", fleet_inputs(rng))
        request.trace = Trace()
        assert "trace" not in request.to_dict()


@pytest.mark.parametrize("workers", ["threaded", "process"])
class TestEndToEnd:
    def test_traced_predict_decomposes_into_hops(self, workers, rng):
        registry, model_ids = synthetic_fleet(tenants=2, seed=0)
        with ClusterService(
            ClusterConfig(shards=2, workers=workers), registry=registry
        ) as cluster:
            gateway = Gateway(ClusterBackend(cluster))
            client = GatewayClient(LoopbackTransport(gateway))
            untraced = client.predict(model_ids[0], fleet_inputs(rng))
            assert untraced.trace is None
            with rtrace.tracing():
                response = client.predict(model_ids[0], fleet_inputs(rng))
                assert response.trace is not None
                hops = set(response.trace.hops())
                # The acceptance decomposition: gateway envelope, middleware
                # chain, cluster frontend wait, shard queue/batch, engine.
                assert {"gateway", "middleware", "frontend", "shard", "engine"} <= hops
                batch = client.predict_batch(
                    [PredictRequest(model_ids[1], fleet_inputs(rng))]
                )
                assert len(set(batch[0].trace.hops())) >= 4

    def test_cluster_stats_gain_trace_block(self, workers, rng):
        registry, model_ids = synthetic_fleet(tenants=2, seed=0)
        with ClusterService(
            ClusterConfig(shards=2, workers=workers), registry=registry
        ) as cluster:
            assert "trace" not in cluster.stats()  # pre-trace payload unchanged
            with rtrace.tracing():
                request = PredictRequest(model_ids[0], fleet_inputs(rng))
                request.trace = Trace()
                cluster.submit(request).result(30.0)
                stats = cluster.stats()
            assert stats["trace"]["enabled"] is True
            assert stats["trace"]["hops"]


def _service_facade(registry, model_ids):
    return LocalBackend(PersonalizationService(registry=registry)), None


def _threaded_facade(registry, model_ids):
    cluster = ClusterService(ClusterConfig(shards=2, workers="threaded"), registry=registry)
    return ClusterBackend(cluster), cluster


def _process_facade(registry, model_ids):
    cluster = ClusterService(ClusterConfig(shards=2, workers="process"), registry=registry)
    return ClusterBackend(cluster), cluster


def _gateway_facade(registry, model_ids):
    cluster = ClusterService(ClusterConfig(shards=2, workers="threaded"), registry=registry)
    return Gateway(ClusterBackend(cluster)), cluster


@pytest.mark.parametrize(
    "build",
    [_service_facade, _threaded_facade, _process_facade, _gateway_facade],
    ids=["service", "cluster-threaded", "cluster-process", "gateway"],
)
class TestUnifiedStatsSchema:
    """Satellite: one schema across every facade, trace block included."""

    def test_stats_schema_with_trace_block(self, build, rng):
        registry, model_ids = synthetic_fleet(tenants=2, seed=0)
        facade, cluster = build(registry, model_ids)
        try:
            with rtrace.tracing():
                request = PredictRequest(model_ids[0], fleet_inputs(rng))
                if isinstance(facade, Gateway):
                    envelope = ApiRequest(
                        method="predict", payload=request.to_dict(), trace=True
                    )
                    assert facade.handle(envelope).ok
                    stats = facade.stats()
                else:
                    request.trace = Trace()
                    facade.predict(request)
                    stats = facade.stats()
            assert_stats_schema(stats)
            assert stats["trace"]["enabled"] is True
            assert stats["trace"]["hops"], "per-hop block missing"
        finally:
            if cluster is not None:
                cluster.shutdown()


class TestLoadgenTrace:
    def test_traced_run_decomposes_every_request(self):
        from repro.experiments.loadgen_cli import LoadgenConfig, run_loadgen

        base = dict(
            scenario="steady-uniform", shards=2, tenants=4, requests=6,
            seed=0, time_scale=0.0,
        )
        config = LoadgenConfig(**base, trace=True)
        assert config.transport == "loopback"  # auto-upgraded off 'local'
        report, deterministic = run_loadgen(config)
        assert report.completed == 6 and report.requests_traced == 6
        trace = report.to_dict(timing=True)["slo"]["trace"]
        assert len(trace["hops"]) >= 4
        for outcome in report.outcomes:
            assert outcome.hops and len(outcome.hops) >= 4

        # Same transport untraced: deterministic face byte-identical, no
        # trace block anywhere.
        plain, plain_deterministic = run_loadgen(
            LoadgenConfig(**base, transport="loopback")
        )
        assert "trace" not in plain.to_dict(timing=True)["slo"]
        assert json.dumps(deterministic, sort_keys=True) == json.dumps(
            plain_deterministic, sort_keys=True
        )

    def test_trace_rejects_chaos_scenarios(self):
        from repro.experiments.loadgen_cli import LoadgenConfig

        with pytest.raises(ValueError, match="chaos"):
            LoadgenConfig(scenario="shard-failure", shards=2, trace=True)
