"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DataLoader, make_dataset, sample_user_profile, build_user_loaders
from repro.nn.models import mobilenet_tiny, resnet_tiny, vgg_tiny


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(0)


@pytest.fixture
def tiny_dataset():
    """The smallest synthetic dataset preset."""
    return make_dataset("synthetic-tiny", seed=0)


@pytest.fixture
def tiny_loaders(tiny_dataset):
    """Train/val loaders over a 4-class user profile of the tiny dataset."""
    profile = sample_user_profile(tiny_dataset, 4, seed=1)
    return build_user_loaders(tiny_dataset, profile, batch_size=16, seed=0)


@pytest.fixture
def tiny_resnet(tiny_dataset):
    """A small bottleneck ResNet sized for the tiny dataset (4-class head)."""
    return resnet_tiny(num_classes=4, input_size=tiny_dataset.image_size, seed=0)


@pytest.fixture
def tiny_vgg(tiny_dataset):
    return vgg_tiny(num_classes=4, input_size=tiny_dataset.image_size, seed=0)


@pytest.fixture
def tiny_mobilenet(tiny_dataset):
    return mobilenet_tiny(num_classes=4, input_size=tiny_dataset.image_size, seed=0)


@pytest.fixture
def small_batch(tiny_loaders):
    """One (images, labels) batch from the tiny training loader."""
    train_loader, _ = tiny_loaders
    return next(iter(train_loader))


def numerical_gradient(fn, x, eps=1e-5):
    """Central-difference numerical gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn()
        flat[i] = original - eps
        minus = fn()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


@pytest.fixture
def gradcheck():
    """Expose the numerical-gradient helper to tests."""
    return numerical_gradient
