"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures at a reduced
("tiny") scale and, when run with ``-s``, prints the reproduced rows so the
output can be compared with the paper's qualitative shape (see
EXPERIMENTS.md for the recorded comparison).
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale, clear_model_cache

#: Scale used by all accuracy benchmarks: small enough that a full figure
#: sweep completes in seconds, large enough that the qualitative orderings
#: (who wins, where the crossovers are) are visible.
BENCH_SCALE = ExperimentScale(
    name="bench",
    dataset_preset="synthetic-tiny",
    model_name="resnet_tiny",
    pretrain_epochs=2,
    finetune_epochs=1,
    prune_iterations=2,
)


@pytest.fixture(scope="session", autouse=True)
def _clear_cache_at_end():
    yield
    clear_model_cache()


def print_rows(title, rows, columns=None):
    """Print a reproduced table under ``-s`` for manual shape comparison."""
    from repro.experiments import format_table

    print(f"\n=== {title} ===")
    print(format_table(rows, columns=columns))
