"""Benchmark E2 — regenerates Fig. 2 (layer-wise sparsity distribution).

Paper shape: class-aware global pruning produces a highly non-uniform
per-layer sparsity allocation (some layers ~99 % pruned, others far less).
"""

import pytest

from repro.experiments import Fig2Config, run_fig2

from conftest import BENCH_SCALE, print_rows


@pytest.mark.benchmark(group="fig2")
def test_fig2_layerwise_distribution(benchmark):
    config = Fig2Config(
        num_user_classes=4,
        target_sparsity=0.85,
        block_size=8,
        scale=BENCH_SCALE,
    )
    rows = benchmark.pedantic(run_fig2, args=(config,), iterations=1, rounds=1)
    print_rows(
        "Fig. 2: layer-wise sparsity distribution",
        rows,
        columns=["layer", "weights", "sparsity", "global_sparsity"],
    )

    summary = rows[-1]
    assert summary["layer"] == "<global>"
    assert summary["global_sparsity"] == pytest.approx(0.85, abs=0.06)
    # Non-uniform allocation: a visible spread between the most- and
    # least-pruned layers.
    assert summary["sparsity_spread"] > 0.1
    assert summary["max_layer_sparsity"] > summary["global_sparsity"]
