"""Scenario throughput: the loadgen scorecard of the sharded runtime.

Replays :mod:`repro.loadgen` scenario presets (uniform control, Zipf burst,
hot-set churn, closed loop) through a :class:`~repro.cluster.ClusterService`
in maximum-ingest mode (``time_scale=0``: no pacing, the cluster absorbs
the stream as fast as it can) and records the SLO numbers that matter per
scenario — goodput, p50/p99 latency, rejection rate — as tracked
BENCH_*.json records, stamped with backend + shard metadata by benchlib.

This is the evaluation-framework counterpart to ``bench_cluster.py``: that
script proves the cluster beats a bounded single service on one fixed
traffic shape; this one tracks how the *same cluster* holds up across
adversarial traffic shapes.

Run under pytest-benchmark for the tracked numbers::

    PYTHONPATH=src python -m pytest benchmarks/bench_loadgen.py --benchmark-only

or as a script (the CI smoke run)::

    PYTHONPATH=src python benchmarks/bench_loadgen.py --smoke --json BENCH_loadgen.json
"""

import argparse

import pytest

from repro.cluster import ClusterConfig, ClusterService
from repro.loadgen import DriverConfig, LoadDriver, build_scenario, synthetic_fleet

#: Fleet defaults: more hot tenants than any shard's cache, four shards.
TENANTS, REQUESTS, SHARDS, CAPACITY = 8, 96, 4, 2

#: The tracked scenario mix: control, skewed burst, churn, closed loop.
SCENARIO_NAMES = ("steady-uniform", "zipf-burst", "hot-churn", "closed-loop")


def make_cluster(registry, shards=SHARDS, capacity=CAPACITY):
    return ClusterService(
        ClusterConfig(
            shards=shards,
            cache_capacity=capacity,
            max_pending=max(256, REQUESTS),
        ),
        registry=registry,
    )


def run_scenario(cluster, workload):
    """One maximum-ingest replay; returns the SLOReport."""
    return LoadDriver(cluster, DriverConfig(time_scale=0.0)).run(workload)


# ---------------------------------------------------------------------------
# pytest-benchmark harness
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def loadgen_setup():
    registry, model_ids = synthetic_fleet(tenants=TENANTS)
    workloads = {
        name: build_scenario(name, requests=REQUESTS).synthesize(model_ids, seed=0)
        for name in SCENARIO_NAMES
    }
    cluster = make_cluster(registry)
    run_scenario(cluster, workloads["steady-uniform"])  # warm every engine path
    yield cluster, workloads
    cluster.shutdown()


@pytest.mark.benchmark(group="loadgen")
@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_scenario_replay(benchmark, loadgen_setup, name):
    cluster, workloads = loadgen_setup
    report = benchmark(run_scenario, cluster, workloads[name])
    assert report.hung == 0
    assert report.completed + report.rejected + report.failed == REQUESTS


# ---------------------------------------------------------------------------
# Script mode: the CI smoke run and the tracked JSON records
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    from benchlib import write_records

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tenants", type=int, default=TENANTS)
    parser.add_argument("--requests", type=int, default=REQUESTS)
    parser.add_argument("--shards", type=int, default=SHARDS)
    parser.add_argument("--capacity", type=int, default=CAPACITY,
                        help="engine-cache slots per shard")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fleet and short scenarios (fast CI sanity run)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write machine-readable BENCH_*.json records to PATH",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        tenants, requests_n, shards, capacity = 4, 24, 2, 2
    else:
        tenants, requests_n, shards, capacity = (
            args.tenants, args.requests, args.shards, args.capacity,
        )

    registry, model_ids = synthetic_fleet(tenants=tenants)
    cluster = make_cluster(registry, shards=shards, capacity=capacity)
    records = []
    try:
        # Warm engine builds so the scenario numbers compare steady states.
        warmup = build_scenario("steady-uniform", requests=requests_n).synthesize(
            model_ids, seed=0
        )
        run_scenario(cluster, warmup)

        print(
            f"loadgen scorecard: {requests_n} requests over {tenants} tenants, "
            f"{shards} shards x {capacity} cache slots (max-ingest replay)"
        )
        print(
            f"{'scenario':>16} | {'goodput':>10} | {'p50':>8} | {'p99':>8} "
            f"| {'rejected':>8} | {'hung':>4}"
        )
        for name in SCENARIO_NAMES:
            workload = build_scenario(name, requests=requests_n).synthesize(
                model_ids, seed=0
            )
            report = run_scenario(cluster, workload)
            if report.hung:
                print(f"FAIL: scenario {name} stranded {report.hung} futures")
                return 1
            latency = report.latency_summary()
            print(
                f"{name:>16} | {report.goodput_rps():8.0f}/s | "
                f"{latency['p50_ms']:6.2f}ms | {latency['p99_ms']:6.2f}ms | "
                f"{report.rejected:8d} | {report.hung:4d}"
            )
            records.extend(
                [
                    {"name": f"{name}_goodput", "unit": "req/s",
                     "value": report.goodput_rps()},
                    {"name": f"{name}_p99", "unit": "ms",
                     "value": latency["p99_ms"]},
                    {"name": f"{name}_rejection_rate", "unit": "ratio",
                     "value": report.rejected / max(1, report.requests)},
                ]
            )
    finally:
        cluster.shutdown()

    if args.json:
        write_records(
            args.json,
            "loadgen_scenarios",
            {
                "tenants": tenants,
                "requests": requests_n,
                "shards": shards,
                "cache_capacity": capacity,
                "backend": "fast",
                "smoke": args.smoke,
            },
            records,
        )
    print("ok: every scenario completed with zero hung futures")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
