"""Scenario throughput: the loadgen scorecard of the sharded runtime.

Replays :mod:`repro.loadgen` scenario presets (uniform control, Zipf burst,
hot-set churn, closed loop) through a :class:`~repro.cluster.ClusterService`
in maximum-ingest mode (``time_scale=0``: no pacing, the cluster absorbs
the stream as fast as it can) and records the SLO numbers that matter per
scenario — goodput, p50/p99 latency, rejection rate — as tracked
BENCH_*.json records, stamped with backend + shard metadata by benchlib.

This is the evaluation-framework counterpart to ``bench_cluster.py``: that
script proves the cluster beats a bounded single service on one fixed
traffic shape; this one tracks how the *same cluster* holds up across
adversarial traffic shapes.

Run under pytest-benchmark for the tracked numbers::

    PYTHONPATH=src python -m pytest benchmarks/bench_loadgen.py --benchmark-only

or as a script (the CI smoke run)::

    PYTHONPATH=src python benchmarks/bench_loadgen.py --smoke --json BENCH_loadgen.json

``--check`` adds the autoscaler acceptance gate: diurnal-ramp and
shard-failure must hold their SLO on *strictly fewer* shard-seconds under
the closed-loop autoscaler than under a static fleet provisioned at the
autoscaler's ceiling, and two same-seed autoscaled replays must produce
byte-identical decision logs (proven on the deterministic fluid simulator,
cross-checked live against the real cluster).
"""

import argparse
import json

import pytest

from repro.cluster import ClusterConfig, ClusterService
from repro.loadgen import DriverConfig, LoadDriver, build_scenario, synthetic_fleet

#: Fleet defaults: more hot tenants than any shard's cache, four shards.
TENANTS, REQUESTS, SHARDS, CAPACITY = 8, 96, 4, 2

#: The tracked scenario mix: control, skewed burst, churn, closed loop.
SCENARIO_NAMES = ("steady-uniform", "zipf-burst", "hot-churn", "closed-loop")


def make_cluster(registry, shards=SHARDS, capacity=CAPACITY):
    return ClusterService(
        ClusterConfig(
            shards=shards,
            cache_capacity=capacity,
            max_pending=max(256, REQUESTS),
        ),
        registry=registry,
    )


def run_scenario(cluster, workload):
    """One maximum-ingest replay; returns the SLOReport."""
    return LoadDriver(cluster, DriverConfig(time_scale=0.0)).run(workload)


# ---------------------------------------------------------------------------
# pytest-benchmark harness
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def loadgen_setup():
    registry, model_ids = synthetic_fleet(tenants=TENANTS)
    workloads = {
        name: build_scenario(name, requests=REQUESTS).synthesize(model_ids, seed=0)
        for name in SCENARIO_NAMES
    }
    cluster = make_cluster(registry)
    run_scenario(cluster, workloads["steady-uniform"])  # warm every engine path
    yield cluster, workloads
    cluster.shutdown()


@pytest.mark.benchmark(group="loadgen")
@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_scenario_replay(benchmark, loadgen_setup, name):
    cluster, workloads = loadgen_setup
    report = benchmark(run_scenario, cluster, workloads[name])
    assert report.hung == 0
    assert report.completed + report.rejected + report.failed == REQUESTS


# ---------------------------------------------------------------------------
# --check: the autoscaled-vs-static acceptance gate
# ---------------------------------------------------------------------------

#: The scenarios the autoscaler must win: the rate sweep it exists to ride,
#: and the chaos run it must not fall over in.
CHECK_SCENARIOS = ("diurnal-ramp", "shard-failure")

#: The p99 budget (ms) the fluid-simulator arms are held to — the same
#: threshold the stock policy's p99-pressure rule and SLO rules use.
CHECK_P99_MS = 250.0


def run_check(smoke: bool, records: list) -> int:
    """The autoscaler acceptance gate; returns a process exit code."""
    from repro.autoscale import default_policy, simulate_autoscaler, static_policy
    from repro.experiments.loadgen_cli import LoadgenConfig, run_loadgen

    min_shards, max_shards = 2, 4
    sim_requests = 160 if smoke else 512
    failures = []

    def check(ok, label):
        status = "ok" if ok else "FAIL"
        print(f"  {status}: {label}")
        if not ok:
            failures.append(label)

    # 1. Determinism: same seed, same policy -> byte-identical payloads
    #    (the decision log rides inside, so it is byte-identical too).
    print("check: decision-log determinism (fluid simulator, seed 0 twice)")
    runs = [
        simulate_autoscaler(
            "diurnal-ramp", requests=sim_requests, seed=0,
            policy=default_policy(min_shards=min_shards, max_shards=max_shards),
        )
        for _ in range(2)
    ]
    blobs = [json.dumps(run, sort_keys=True) for run in runs]
    check(blobs[0] == blobs[1], "two same-seed runs are byte-identical")
    decision_lines = [
        "\n".join(json.dumps(d, sort_keys=True) for d in run["decisions"])
        for run in runs
    ]
    check(decision_lines[0] == decision_lines[1], "decision logs byte-identical")

    # 2. Fluid-model comparison: both scenarios, autoscaled vs static-at-peak.
    for name in CHECK_SCENARIOS:
        print(f"check: {name} autoscaled vs static (fluid simulator)")
        auto = simulate_autoscaler(
            name, requests=sim_requests, seed=0,
            policy=default_policy(min_shards=min_shards, max_shards=max_shards),
        )
        static = simulate_autoscaler(
            name, requests=sim_requests, seed=0, policy=static_policy(max_shards)
        )
        check(auto["drained"], f"{name}: autoscaled arm drains its backlog")
        check(
            auto["peak_p99_ms"] <= CHECK_P99_MS,
            f"{name}: autoscaled p99 proxy {auto['peak_p99_ms']:.1f}ms "
            f"<= {CHECK_P99_MS:.0f}ms",
        )
        check(
            auto["shard_seconds"] < static["shard_seconds"],
            f"{name}: {auto['shard_seconds']:.3f} shard-seconds autoscaled "
            f"< {static['shard_seconds']:.3f} static",
        )
        records.extend(
            [
                {"name": f"check_{name}_autoscaled_shard_seconds",
                 "unit": "shard*s", "value": auto["shard_seconds"]},
                {"name": f"check_{name}_static_shard_seconds",
                 "unit": "shard*s", "value": static["shard_seconds"]},
            ]
        )

    # 3. Live cross-check: the real cluster under real traffic.  The
    #    autoscaled arm starts at the floor and earns capacity; the static
    #    arm pays for the ceiling the whole run.  SLO held = zero hangs and
    #    every request resolved (shard-failure fails its killed in-flight
    #    requests cleanly by design — clean failures are in-SLO there).
    time_scale = 2.0
    for name in CHECK_SCENARIOS:
        print(f"check: {name} autoscaled vs static (live cluster)")
        auto_report, _ = run_loadgen(
            LoadgenConfig(
                scenario=name, shards=min_shards, seed=0,
                time_scale=time_scale, autoscale=True, max_shards=max_shards,
            )
        )
        static_report, _ = run_loadgen(
            LoadgenConfig(
                scenario=name, shards=max_shards, seed=0,
                time_scale=time_scale,
            )
        )
        auto_ss = auto_report.autoscale_summary["shard_seconds"]
        static_ss = max_shards * static_report.elapsed_s
        for arm, report in (("autoscaled", auto_report), ("static", static_report)):
            check(report.hung == 0, f"{name}/{arm}: zero hung futures")
            resolved = report.completed + report.rejected + report.failed
            check(
                resolved == report.requests,
                f"{name}/{arm}: all {report.requests} requests resolved",
            )
        if name == "diurnal-ramp":
            check(auto_report.failed == 0, f"{name}/autoscaled: zero failures")
        check(
            auto_ss < static_ss,
            f"{name}: {auto_ss:.3f} live shard-seconds autoscaled "
            f"< {static_ss:.3f} static",
        )
        records.extend(
            [
                {"name": f"check_{name}_live_autoscaled_shard_seconds",
                 "unit": "shard*s", "value": auto_ss},
                {"name": f"check_{name}_live_static_shard_seconds",
                 "unit": "shard*s", "value": static_ss},
            ]
        )

    if failures:
        print(f"FAIL: {len(failures)} autoscale check(s) failed")
        for label in failures:
            print(f"  - {label}")
        return 1
    print("ok: autoscaler holds SLO on strictly fewer shard-seconds, "
          "decision logs deterministic")
    return 0


# ---------------------------------------------------------------------------
# --lifecycle: the drift-recovery section and its acceptance gate
# ---------------------------------------------------------------------------

def run_lifecycle_section(smoke: bool, records: list) -> dict:
    """Static vs lifecycle-managed replay of the drift-step workload."""
    from repro.lifecycle import run_lifecycle_compare

    requests = 128 if smoke else 192
    result = run_lifecycle_compare(scenario="drift-step", requests=requests, seed=0)
    cmp_block = result["compare"]
    managed = result["managed"]
    print(
        f"lifecycle: drift-step, {requests} requests over "
        f"{result['tenants']} tenants (virtually-clocked replay)"
    )
    print(
        f"{'arm':>10} | {'first win':>9} | {'final win':>9} | "
        f"{'promoted':>8} | {'rolled back':>11}"
    )
    for arm in ("static", "managed"):
        acc = result[arm]["accuracy"]
        mgr = result[arm]["manager"]
        print(
            f"{arm:>10} | {acc['first_window']:9.3f} | {acc['final_window']:9.3f} | "
            f"{mgr['promoted']:8d} | {mgr['rolled_back']:11d}"
        )
    records.extend(
        [
            {"name": "lifecycle_static_final_accuracy", "unit": "ratio",
             "value": cmp_block["static_final_accuracy"]},
            {"name": "lifecycle_managed_final_accuracy", "unit": "ratio",
             "value": cmp_block["managed_final_accuracy"]},
            {"name": "lifecycle_accuracy_delta", "unit": "ratio",
             "value": cmp_block["accuracy_delta"]},
            {"name": "lifecycle_promoted", "unit": "count",
             "value": cmp_block["promoted"]},
            {"name": "lifecycle_transitions", "unit": "count",
             "value": managed["manager"]["transitions"]},
        ]
    )
    return result


def run_lifecycle_check(smoke: bool, records: list, result: dict) -> int:
    """The lifecycle acceptance gate; returns a process exit code.

    The managed arm must *recover* served-head accuracy after the drift
    step (static stays on the floor), the audit must show full
    DRIFTING → PROMOTED cycles, the SLO must hold, and two same-seed
    managed replays must be byte-identical (audit + decision logs ride
    inside the payload, so they are too).
    """
    from repro.lifecycle import run_lifecycle_replay

    requests = 128 if smoke else 192
    failures = []

    def check(ok, label):
        status = "ok" if ok else "FAIL"
        print(f"  {status}: {label}")
        if not ok:
            failures.append(label)

    cmp_block = result["compare"]
    managed = result["managed"]
    print("check: lifecycle recovers accuracy after drift (drift-step, seed 0)")
    check(
        cmp_block["lifecycle_wins"],
        f"managed final accuracy {cmp_block['managed_final_accuracy']:.3f} "
        f"beats static {cmp_block['static_final_accuracy']:.3f} with SLO held",
    )
    check(
        cmp_block["managed_final_accuracy"] >= 0.75,
        f"managed arm recovers to >= 0.75 "
        f"(got {cmp_block['managed_final_accuracy']:.3f})",
    )
    check(cmp_block["promoted"] >= 1, "at least one canary promoted")
    states = {t["to_state"] for t in managed["audit"]}
    check(
        {"DRIFTING", "REPRUNING", "CANARYING", "PROMOTED"} <= states,
        f"audit shows the full DRIFTING -> PROMOTED path (saw {sorted(states)})",
    )

    print("check: replay determinism (managed arm, seed 0 twice)")
    runs = [
        run_lifecycle_replay(
            scenario="drift-step", requests=requests, seed=0, lifecycle=True
        )
        for _ in range(2)
    ]
    blobs = [json.dumps(run, sort_keys=True) for run in runs]
    check(blobs[0] == blobs[1], "two same-seed managed replays are byte-identical")
    check(
        runs[0]["audit_jsonl"] == runs[1]["audit_jsonl"],
        "audit logs byte-identical",
    )
    check(
        runs[0]["decisions_jsonl"] == runs[1]["decisions_jsonl"],
        "rollout decision logs byte-identical",
    )

    if failures:
        print(f"FAIL: {len(failures)} lifecycle check(s) failed")
        for label in failures:
            print(f"  - {label}")
        return 1
    print("ok: lifecycle recovers served-head accuracy after drift, "
          "audit and decision logs deterministic")
    return 0


# ---------------------------------------------------------------------------
# Script mode: the CI smoke run and the tracked JSON records
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    from benchlib import write_records

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tenants", type=int, default=TENANTS)
    parser.add_argument("--requests", type=int, default=REQUESTS)
    parser.add_argument("--shards", type=int, default=SHARDS)
    parser.add_argument("--capacity", type=int, default=CAPACITY,
                        help="engine-cache slots per shard")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fleet and short scenarios (fast CI sanity run)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="run the autoscaler acceptance gate: SLO held on strictly "
        "fewer shard-seconds than a static fleet, deterministic decision "
        "logs (nonzero exit on failure); with --lifecycle, runs the "
        "lifecycle gate instead",
    )
    parser.add_argument(
        "--lifecycle", action="store_true",
        help="add the tenant-lifecycle section: static vs managed replay "
        "of the drift-step workload; --check then gates on drift recovery "
        "instead of autoscaling",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write machine-readable BENCH_*.json records to PATH",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        tenants, requests_n, shards, capacity = 4, 24, 2, 2
    else:
        tenants, requests_n, shards, capacity = (
            args.tenants, args.requests, args.shards, args.capacity,
        )

    registry, model_ids = synthetic_fleet(tenants=tenants)
    cluster = make_cluster(registry, shards=shards, capacity=capacity)
    records = []
    try:
        # Warm engine builds so the scenario numbers compare steady states.
        warmup = build_scenario("steady-uniform", requests=requests_n).synthesize(
            model_ids, seed=0
        )
        run_scenario(cluster, warmup)

        print(
            f"loadgen scorecard: {requests_n} requests over {tenants} tenants, "
            f"{shards} shards x {capacity} cache slots (max-ingest replay)"
        )
        print(
            f"{'scenario':>16} | {'goodput':>10} | {'p50':>8} | {'p99':>8} "
            f"| {'rejected':>8} | {'hung':>4}"
        )
        for name in SCENARIO_NAMES:
            workload = build_scenario(name, requests=requests_n).synthesize(
                model_ids, seed=0
            )
            report = run_scenario(cluster, workload)
            if report.hung:
                print(f"FAIL: scenario {name} stranded {report.hung} futures")
                return 1
            latency = report.latency_summary()
            print(
                f"{name:>16} | {report.goodput_rps():8.0f}/s | "
                f"{latency['p50_ms']:6.2f}ms | {latency['p99_ms']:6.2f}ms | "
                f"{report.rejected:8d} | {report.hung:4d}"
            )
            records.extend(
                [
                    {"name": f"{name}_goodput", "unit": "req/s",
                     "value": report.goodput_rps()},
                    {"name": f"{name}_p99", "unit": "ms",
                     "value": latency["p99_ms"]},
                    {"name": f"{name}_rejection_rate", "unit": "ratio",
                     "value": report.rejected / max(1, report.requests)},
                ]
            )
    finally:
        cluster.shutdown()

    check_rc = 0
    if args.lifecycle:
        lifecycle_result = run_lifecycle_section(args.smoke, records)
        if args.check:
            check_rc = run_lifecycle_check(args.smoke, records, lifecycle_result)
    elif args.check:
        check_rc = run_check(args.smoke, records)

    if args.json:
        write_records(
            args.json,
            "loadgen_scenarios",
            {
                "tenants": tenants,
                "requests": requests_n,
                "shards": shards,
                "cache_capacity": capacity,
                "backend": "fast",
                "smoke": args.smoke,
                "check": args.check,
                "lifecycle": args.lifecycle,
            },
            records,
        )
    print("ok: every scenario completed with zero hung futures")
    return check_rc


if __name__ == "__main__":
    raise SystemExit(main())
