"""Benchmark E6 — regenerates Fig. 8 (layer-wise speedup and energy efficiency).

Paper shape (on representative ResNet-50 layers, 80-90 % global sparsity):

* CRISP-STC: roughly 7-14x (1:4), 5-12x (2:4) and 2-8x (3:4) speedup, with
  block size 64 the best configuration;
* NVIDIA-STC: at most ~2x;
* DSTC: ~3-8x on early layers, degrading on late layers where data movement
  dominates;
* energy efficiency of CRISP-STC far above both baselines.
"""

import pytest

from repro.experiments import Fig8Config, aggregate_fig8, run_fig8

from conftest import print_rows


@pytest.mark.benchmark(group="fig8")
def test_fig8_accelerator_comparison(benchmark):
    config = Fig8Config(
        nm_ratios=((1, 4), (2, 4), (3, 4)),
        block_sizes=(16, 32, 64),
        global_sparsities=(0.80, 0.85, 0.90),
    )
    rows = benchmark.pedantic(run_fig8, args=(config,), iterations=1, rounds=3)
    aggregated = aggregate_fig8(rows)
    print_rows("Fig. 8 (aggregate): speedup / energy vs dense", aggregated)

    def agg(pattern, sparsity, accelerator):
        return next(
            r for r in aggregated
            if r["pattern"] == pattern
            and r["global_sparsity"] == sparsity
            and r["accelerator"] == accelerator
        )

    for pattern in ("1:4", "2:4", "3:4"):
        for sparsity in (0.80, 0.90):
            crisp = agg(pattern, sparsity, "crisp-stc-b64")
            nvidia = agg(pattern, sparsity, "nvidia-stc")
            dstc = agg(pattern, sparsity, "dstc")
            # CRISP-STC beats both baselines; NVIDIA-STC <= 2x.
            assert crisp["speedup_vs_dense"] > dstc["speedup_vs_dense"]
            assert crisp["speedup_vs_dense"] > nvidia["speedup_vs_dense"]
            assert nvidia["speedup_vs_dense"] <= 2.0 + 1e-9
            assert crisp["energy_eff_vs_dense"] > nvidia["energy_eff_vs_dense"]

    # Pattern ordering at matched sparsity: 1:4 >= 2:4 >= 3:4.
    s90 = {p: agg(p, 0.90, "crisp-stc-b64")["speedup_vs_dense"] for p in ("1:4", "2:4", "3:4")}
    assert s90["1:4"] >= s90["2:4"] >= s90["3:4"]

    # Block-size ordering: 64 >= 32 >= 16.
    by_block = {
        b: agg("2:4", 0.90, f"crisp-stc-b{b}")["speedup_vs_dense"] for b in (16, 32, 64)
    }
    assert by_block[64] >= by_block[32] >= by_block[16]

    # Headline magnitudes: CRISP-STC reaches high single/double-digit speedup
    # at 90 % sparsity and NVIDIA-STC never does.
    assert s90["1:4"] > 6.0
    assert s90["2:4"] > 5.0


@pytest.mark.benchmark(group="fig8")
def test_fig8_dstc_layer_asymmetry(benchmark):
    """DSTC is strong on early large-spatial layers and weak on late layers."""
    config = Fig8Config(nm_ratios=((2, 4),), block_sizes=(64,), global_sparsities=(0.85,))
    rows = benchmark.pedantic(run_fig8, args=(config,), iterations=1, rounds=3)

    dstc_rows = [r for r in rows if r["accelerator"] == "dstc"]
    by_layer = {r["layer"]: r["speedup_vs_dense"] for r in dstc_rows}
    early = by_layer["layer1.0.conv2"]
    late = by_layer["layer4.2.conv3"]
    print(f"\nDSTC speedup early={early:.2f}x late={late:.2f}x")
    assert early > late
    assert early > 3.0
    assert late < 4.0
