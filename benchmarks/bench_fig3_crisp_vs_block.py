"""Benchmark E3 — regenerates Fig. 3 (CRISP vs block pruning across sparsity).

Paper shape: pure block pruning loses accuracy rapidly above ~80 % sparsity,
while CRISP's hybrid pattern stays close to the dense upper bound well past
90 %.  At tiny scale we check CRISP >= block pruning at the highest shared
sparsity point.
"""

import pytest

from repro.experiments import Fig3Config, run_fig3

from conftest import BENCH_SCALE, print_rows


@pytest.mark.benchmark(group="fig3")
def test_fig3_crisp_vs_block_sweep(benchmark):
    config = Fig3Config(
        sparsity_levels=(0.5, 0.75, 0.875),
        block_sizes=(8,),
        nm_ratios=((2, 4),),
        num_user_classes=4,
        scale=BENCH_SCALE,
    )
    rows = benchmark.pedantic(run_fig3, args=(config,), iterations=1, rounds=1)
    print_rows("Fig. 3: CRISP vs block pruning", rows)

    crisp = {r["target_sparsity"]: r for r in rows if r["method"] == "crisp"}
    block = {r["target_sparsity"]: r for r in rows if r["method"] == "block"}

    # Both methods actually hit their sparsity targets.
    for target, row in crisp.items():
        assert row["achieved_sparsity"] == pytest.approx(target, abs=0.06)

    # CRISP is at least as accurate as block pruning on average across the
    # sweep (the paper's Fig. 3 gap, with tolerance for tiny-scale noise).
    crisp_mean = sum(r["accuracy"] for r in crisp.values()) / len(crisp)
    block_mean = sum(r["accuracy"] for r in block.values()) / len(block)
    assert crisp_mean >= block_mean - 0.05
