"""Gateway transports head to head: in-process API vs loopback wire vs HTTP.

Replays the same seeded scenario through the three Serving API v2 paths —
the :class:`~repro.gateway.ClusterBackend` in process, a
:class:`~repro.gateway.GatewayClient` over the JSON loopback wire, and the
same client over a real socket (:class:`~repro.gateway.GatewayHTTPServer` on
an ephemeral port) — and scores each with the loadgen SLO machinery.  The
predictions digest must be identical across all three (the wire is allowed
to cost latency, never bits), and a rate-limited burst must shed with
``RESOURCE_EXHAUSTED`` rejections, zero hangs, zero bare failures.

Run under pytest-benchmark for the tracked numbers::

    PYTHONPATH=src python -m pytest benchmarks/bench_gateway.py --benchmark-only

or as a script (the CI smoke run)::

    PYTHONPATH=src python benchmarks/bench_gateway.py --smoke --json BENCH_gateway.json
"""

import argparse

import pytest

from repro.cluster import ClusterConfig, ClusterService
from repro.gateway import (
    ClusterBackend,
    Gateway,
    GatewayClient,
    GatewayConfig,
    LoopbackTransport,
    serve_http,
)
from repro.loadgen import DriverConfig, LoadDriver, build_scenario, synthetic_fleet

#: Fleet defaults (mirrors bench_loadgen so numbers are comparable).
TENANTS, REQUESTS, SHARDS, CAPACITY = 8, 96, 4, 2

SCENARIO = "steady-uniform"


def make_cluster(registry, shards=SHARDS, capacity=CAPACITY, requests=REQUESTS):
    return ClusterService(
        ClusterConfig(
            shards=shards,
            cache_capacity=capacity,
            max_pending=max(256, requests),
        ),
        registry=registry,
    )


def replay(target, workload):
    """One maximum-ingest replay; returns the SLOReport."""
    return LoadDriver(target, DriverConfig(time_scale=0.0)).run(workload)


# ---------------------------------------------------------------------------
# pytest-benchmark harness
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def gateway_setup():
    registry, model_ids = synthetic_fleet(tenants=TENANTS)
    workload = build_scenario(SCENARIO, requests=REQUESTS).synthesize(model_ids, seed=0)
    cluster = make_cluster(registry)
    gateway = Gateway(ClusterBackend(cluster))
    server = serve_http(gateway)
    targets = {
        "local": ClusterBackend(cluster),
        "loopback": GatewayClient(LoopbackTransport(gateway)),
        "http": GatewayClient(server.transport()),
    }
    replay(targets["local"], workload)  # warm every engine path
    yield targets, workload
    server.stop()
    cluster.shutdown()


@pytest.mark.benchmark(group="gateway")
@pytest.mark.parametrize("transport", ("local", "loopback", "http"))
def test_transport_replay(benchmark, gateway_setup, transport):
    targets, workload = gateway_setup
    report = benchmark(replay, targets[transport], workload)
    assert report.hung == 0 and report.completed == REQUESTS


def test_transport_parity(gateway_setup):
    """Bit-identical predictions across every transport."""
    targets, workload = gateway_setup
    digests = {
        name: replay(target, workload).predictions_digest()
        for name, target in targets.items()
    }
    assert len(set(digests.values())) == 1, digests


# ---------------------------------------------------------------------------
# Script mode: the CI smoke run and the tracked JSON records
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    from benchlib import write_records

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tenants", type=int, default=TENANTS)
    parser.add_argument("--requests", type=int, default=REQUESTS)
    parser.add_argument("--shards", type=int, default=SHARDS)
    parser.add_argument("--capacity", type=int, default=CAPACITY,
                        help="engine-cache slots per shard")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fleet and a short scenario (fast CI sanity run)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if the metrics-plane overhead gate fails "
        "(poller-attached p99 must stay within 5% of detached, plus a "
        "small absolute jitter floor; off by default so smoke runs on "
        "loaded machines don't flake)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write machine-readable BENCH_*.json records to PATH",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        tenants, requests_n, shards, capacity = 4, 24, 2, 2
    else:
        tenants, requests_n, shards, capacity = (
            args.tenants, args.requests, args.shards, args.capacity,
        )

    registry, model_ids = synthetic_fleet(tenants=tenants)
    workload_for = lambda: build_scenario(SCENARIO, requests=requests_n).synthesize(
        model_ids, seed=0
    )
    cluster = make_cluster(registry, shards=shards, capacity=capacity,
                           requests=requests_n)
    gateway = Gateway(ClusterBackend(cluster))
    records = []
    try:
        replay(ClusterBackend(cluster), workload_for())  # warm engines
        print(
            f"gateway transports: {requests_n} requests over {tenants} tenants, "
            f"{shards} shards (max-ingest replay of {SCENARIO!r})"
        )
        print(f"{'transport':>10} | {'goodput':>10} | {'p50':>8} | {'p99':>8} | digest")
        digests = {}
        with serve_http(gateway) as server:
            targets = {
                "local": ClusterBackend(cluster),
                "loopback": GatewayClient(LoopbackTransport(gateway)),
                "http": GatewayClient(server.transport()),
            }
            for name, target in targets.items():
                report = replay(target, workload_for())
                if report.hung or report.completed != requests_n:
                    print(
                        f"FAIL: transport {name} completed {report.completed}, "
                        f"hung {report.hung}"
                    )
                    return 1
                latency = report.latency_summary()
                digests[name] = report.predictions_digest()
                print(
                    f"{name:>10} | {report.goodput_rps():8.0f}/s | "
                    f"{latency['p50_ms']:6.2f}ms | {latency['p99_ms']:6.2f}ms | "
                    f"{digests[name][:12]}"
                )
                records.extend(
                    [
                        {"name": f"{name}_goodput", "unit": "req/s",
                         "value": report.goodput_rps()},
                        {"name": f"{name}_p99", "unit": "ms",
                         "value": latency["p99_ms"]},
                    ]
                )
        if len(set(digests.values())) != 1:
            print(f"FAIL: transports disagree on predictions: {digests}")
            return 1
        print("parity: predictions bit-identical across local/loopback/http")

        # The rate-limit acceptance check: a bursty over-limit tenant is
        # shed with RESOURCE_EXHAUSTED — rejected outcomes, never hangs or
        # bare failures.
        limited_gateway = Gateway(
            ClusterBackend(cluster), GatewayConfig(rate_per_s=5.0, burst=4)
        )
        burst = build_scenario("zipf-burst", requests=requests_n).synthesize(
            model_ids, seed=0
        )
        report = replay(GatewayClient(LoopbackTransport(limited_gateway)), burst)
        if report.hung or report.failed or report.rejected < 1:
            print(
                f"FAIL: rate-limited burst must shed cleanly "
                f"(rejected {report.rejected}, failed {report.failed}, "
                f"hung {report.hung})"
            )
            return 1
        print(
            f"rate limit: {report.rejected}/{report.requests} shed with "
            f"RESOURCE_EXHAUSTED, {report.completed} served, 0 hung"
        )
        records.append(
            {"name": "ratelimit_rejection_rate", "unit": "ratio",
             "value": report.rejected / max(1, report.requests)}
        )

        # Tracing overhead: the same loopback replay with hop spans on vs
        # off.  The off number is the one the <5% p99 criterion tracks —
        # the disabled path must stay one boolean check per seam.
        from repro import trace as rtrace

        client = GatewayClient(LoopbackTransport(gateway))
        off = replay(client, workload_for())
        rtrace.reset_aggregator()
        with rtrace.tracing():
            on = replay(client, workload_for())
        off_p99 = off.latency_summary()["p99_ms"]
        on_p99 = on.latency_summary()["p99_ms"]
        traced = on.requests_traced
        if traced != on.completed:
            print(f"FAIL: traced replay decomposed {traced}/{on.completed} requests")
            return 1
        print(
            f"trace overhead: p99 off {off_p99:.2f}ms / on {on_p99:.2f}ms "
            f"({traced}/{on.requests} requests hop-decomposed when on)"
        )
        records.extend(
            [
                {"name": "loopback_p99_trace_off", "unit": "ms", "value": off_p99},
                {"name": "loopback_p99_trace_on", "unit": "ms", "value": on_p99},
            ]
        )

        # Metrics-plane overhead: the same loopback replay with a
        # TelemetryPoller sampling the cluster vs no poller at all.  Each
        # mode takes the best p99 of three replays (min-of-N is the stable
        # estimator under scheduler noise), and the acceptance gate is
        # <5% p99 drift plus a 0.25ms absolute jitter floor so sub-ms
        # baselines don't fail on scheduling quanta.
        from repro.metrics import TelemetryPoller

        def best_p99(attach_poller):
            best = float("inf")
            for _ in range(3):
                if attach_poller:
                    with TelemetryPoller(cluster, interval_s=0.02):
                        report = replay(client, workload_for())
                else:
                    report = replay(client, workload_for())
                if report.hung or report.completed != requests_n:
                    raise RuntimeError(
                        f"overhead replay degraded: completed "
                        f"{report.completed}, hung {report.hung}"
                    )
                best = min(best, report.latency_summary()["p99_ms"])
            return best

        detached_p99 = best_p99(False)
        attached_p99 = best_p99(True)
        budget_ms = detached_p99 * 1.05 + 0.25
        drift = (attached_p99 - detached_p99) / detached_p99 if detached_p99 else 0.0
        print(
            f"metrics overhead: p99 detached {detached_p99:.2f}ms / attached "
            f"{attached_p99:.2f}ms ({drift * 100:+.1f}% drift, budget "
            f"{budget_ms:.2f}ms)"
        )
        records.extend(
            [
                {"name": "loopback_p99_poller_detached", "unit": "ms",
                 "value": detached_p99},
                {"name": "loopback_p99_poller_attached", "unit": "ms",
                 "value": attached_p99},
            ]
        )
        failures = []
        if attached_p99 > budget_ms:
            failures.append(
                f"metrics overhead: attached p99 {attached_p99:.2f}ms exceeds "
                f"budget {budget_ms:.2f}ms (detached {detached_p99:.2f}ms + 5% "
                f"+ 0.25ms)"
            )
    finally:
        cluster.shutdown()

    if args.json:
        write_records(
            args.json,
            "gateway_transports",
            {
                "tenants": tenants,
                "requests": requests_n,
                "shards": shards,
                "capacity": capacity,
                "scenario": SCENARIO,
            },
            records,
        )

    if failures:
        print(("FAIL: " if args.check else "over budget (not enforced): ")
              + "; ".join(failures))
        return 1 if args.check else 0
    print("ok: metrics-plane poller stays within the 5% p99 overhead budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
