"""Serving throughput: micro-batched scheduler dispatch vs per-request dispatch.

Builds a fleet of magnitude-sparsified tenant models in a
:class:`~repro.serve.ModelRegistry`, replays a mixed-tenant single-image
request stream through the :class:`~repro.serve.BatchScheduler`, and
compares one-flush-per-request dispatch against micro-batched dispatch of
the identical stream.  This is the number the serving redesign is about:
fusing each tenant's queued requests into one ``predict_many`` call
amortises per-request Python dispatch and engine lookup.

Run under pytest-benchmark for the tracked numbers::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py --benchmark-only

or as a script (the CI smoke run)::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --json BENCH_serving.json
"""

import argparse

import numpy as np
import pytest

from repro.nn.models import build_model
from repro.nn.models.base import prunable_layers
from repro.serve import BatchScheduler, EngineCache, EngineSpec, ModelRegistry, PredictRequest

#: Fleet defaults: a few tenants, single-image requests — the paper's
#: personalized-edge traffic shape, where per-request batches are tiny and
#: dispatch overhead dominates unless requests are fused.
TENANTS, REQUESTS, NUM_CLASSES, INPUT_SIZE = 4, 32, 8, 12
SPARSITY = 0.85


def _magnitude_sparsify(model, sparsity=SPARSITY, seed=0):
    """Install unstructured magnitude masks so CSR serving sees realistic nnz."""
    rng = np.random.default_rng(seed)
    for layer in prunable_layers(model).values():
        w = layer.weight.data
        threshold = np.quantile(np.abs(w) + 1e-12 * rng.random(w.shape), sparsity)
        layer.weight.set_mask((np.abs(w) >= threshold).astype(np.float64))


def build_fleet(tenants=TENANTS, seed=0):
    """Register ``tenants`` sparsified models; returns (registry, model_ids, spec)."""
    spec = EngineSpec(backend="fast", weight_format="csr")
    registry = ModelRegistry()
    model_ids = []
    for user_id in range(tenants):
        model = build_model(
            "resnet_tiny", num_classes=NUM_CLASSES, input_size=INPUT_SIZE, seed=seed + user_id
        )
        _magnitude_sparsify(model, seed=seed + user_id)
        model_ids.append(registry.register(model, spec=spec, model_id=f"tenant-{user_id}"))
    return registry, model_ids, spec


def request_stream(model_ids, requests=REQUESTS, batch=1, seed=0):
    """Round-robin mixed-tenant stream of ``requests`` single-image requests."""
    rng = np.random.default_rng(seed)
    return [
        PredictRequest(
            model_ids[i % len(model_ids)],
            rng.normal(size=(batch, 3, INPUT_SIZE, INPUT_SIZE)),
            request_id=f"bench-{i:05d}",
        )
        for i in range(requests)
    ]


def replay_per_request(scheduler, requests):
    """One flush per request: the pre-serving dispatch pattern."""
    return [scheduler.dispatch([r])[0] for r in requests]


def replay_batched(scheduler, requests):
    """The identical stream, fused per tenant by the scheduler."""
    return scheduler.dispatch(requests)


# ---------------------------------------------------------------------------
# pytest-benchmark harness
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def serving_setup():
    registry, model_ids, _ = build_fleet()
    scheduler = BatchScheduler(EngineCache(registry, capacity=TENANTS))
    requests = request_stream(model_ids)
    replay_batched(scheduler, requests)  # warm engines + workspaces
    replay_per_request(scheduler, requests)
    return scheduler, requests


@pytest.mark.benchmark(group="serving")
def test_per_request_dispatch(benchmark, serving_setup):
    scheduler, requests = serving_setup
    responses = benchmark(replay_per_request, scheduler, requests)
    assert len(responses) == len(requests)


@pytest.mark.benchmark(group="serving")
def test_batched_dispatch(benchmark, serving_setup):
    scheduler, requests = serving_setup
    responses = benchmark(replay_batched, scheduler, requests)
    assert len(responses) == len(requests)
    assert max(r.batched_with for r in responses) > 1


# ---------------------------------------------------------------------------
# Script mode: the CI smoke run and the tracked JSON records
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    from benchlib import best_of, write_records

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tenants", type=int, default=TENANTS)
    parser.add_argument("--requests", type=int, default=REQUESTS)
    parser.add_argument(
        "--capacity", type=int, default=None,
        help="engine cache capacity (default: one slot per tenant)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fleet, single timing repeat (fast CI sanity run)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write machine-readable BENCH_*.json records to PATH",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless batched dispatch >= per-request dispatch "
        "(timing-sensitive; off by default so loaded CI machines don't flake)",
    )
    args = parser.parse_args(argv)

    tenants = 2 if args.smoke else args.tenants
    requests_n = 8 if args.smoke else args.requests
    repeat = 1 if args.smoke else 3
    capacity = args.capacity or tenants

    registry, model_ids, spec = build_fleet(tenants=tenants)
    scheduler = BatchScheduler(EngineCache(registry, capacity=capacity))
    requests = request_stream(model_ids, requests=requests_n)

    # Warm both dispatch shapes, and check the two replays agree exactly.
    solo = replay_per_request(scheduler, requests)
    batched = replay_batched(scheduler, requests)
    for a, b in zip(solo, batched):
        np.testing.assert_allclose(a.logits, b.logits, atol=1e-10)

    t_solo = best_of(replay_per_request, scheduler, requests, repeat=repeat)
    t_batched = best_of(replay_batched, scheduler, requests, repeat=repeat)
    speedup = t_solo / t_batched

    print(
        f"serving {requests_n} single-image requests over {tenants} tenants "
        f"(resnet_tiny, {spec.weight_format} weights, cache capacity {capacity})"
    )
    print(f"{'dispatch':>12} | {'latency':>10} | {'requests/s':>10}")
    print(f"{'per-request':>12} | {t_solo * 1e3:8.1f}ms | {requests_n / t_solo:10.0f}")
    print(f"{'batched':>12} | {t_batched * 1e3:8.1f}ms | {requests_n / t_batched:10.0f}")
    print(f"micro-batching speedup: {speedup:.2f}x")

    if args.json:
        write_records(
            args.json,
            "serving_throughput",
            {
                "tenants": tenants,
                "requests": requests_n,
                "request_batch": 1,
                "cache_capacity": capacity,
                "weight_format": spec.weight_format,
                "backend": spec.backend,
                "smoke": args.smoke,
            },
            [
                {"name": "per_request_dispatch", "unit": "s", "value": t_solo,
                 "requests_per_s": requests_n / t_solo},
                {"name": "batched_dispatch", "unit": "s", "value": t_batched,
                 "requests_per_s": requests_n / t_batched},
                {"name": "micro_batching_speedup", "unit": "x", "value": speedup},
            ],
        )

    if speedup < 1.0:
        message = f"batched dispatch slower than per-request ({speedup:.2f}x < 1x)"
        print(("FAIL: " if args.check else "below target (not enforced): ") + message)
        return 1 if args.check else 0
    print("ok: batched dispatch >= per-request dispatch")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
