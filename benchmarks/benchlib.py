"""Shared helpers for the benchmark scripts' script-mode (CI smoke) runs.

The benchmark scripts import this module, which works from either entry
point: running a script directly puts ``benchmarks/`` on ``sys.path``, and
pytest's rootdir insertion does the same when the files are collected.
"""

import json
import os
import platform
import subprocess
import sys
import time


def host_context():
    """Host provenance stamped into every benchmark payload.

    A latency number is only comparable to another taken on a comparable
    host, so each BENCH_*.json records where it came from: CPU count,
    platform, Python version, and the git commit (``GITHUB_SHA`` in CI,
    ``git rev-parse`` locally, ``None`` outside a checkout).
    """
    sha = os.environ.get("GITHUB_SHA")
    if not sha:
        try:
            sha = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True, text=True, timeout=10,
                cwd=os.path.dirname(os.path.abspath(__file__)),
            ).stdout.strip() or None
        except Exception:
            sha = None
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "git_sha": sha,
    }


def best_of(fn, *args, repeat=3):
    """Best-of-``repeat`` wall-clock seconds for ``fn(*args)``."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _record_metadata(config):
    """Deployment metadata stamped into every record: backend, shards, workers.

    The active compute backend, the shard count and the worker execution
    model (threaded shards vs process shards on shared-memory weights) are
    the knobs that change what a number means across PRs, so each record
    carries them even when the producing script didn't think to include
    them.  Single-process benchmarks are shard count 1 with threaded
    (in-process) execution.
    """
    try:
        from repro.backend import active_backend

        backend = active_backend().name
    except Exception:  # pragma: no cover - repro not importable
        backend = None
    shards, workers = 1, "threaded"
    if isinstance(config, dict):
        backend = config.get("backend", backend)
        shards = config.get("shards", 1)
        workers = config.get("workers", workers)
    return {"backend": backend, "shards": shards, "workers": workers}


def write_records(path, benchmark, config, records):
    """Write one machine-readable BENCH_*.json payload and announce it.

    The schema is shared by every benchmark script so the perf trajectory
    can be tracked across PRs: ``{"benchmark", "config", "records"}`` with
    each record carrying at least ``name``, ``unit`` and ``value`` plus the
    stamped ``backend``/``shards`` deployment metadata (records that already
    set either key keep their own value).
    """
    metadata = _record_metadata(config)
    for record in records:
        for key, value in metadata.items():
            record.setdefault(key, value)
    payload = {
        "benchmark": benchmark,
        "config": config,
        "host": host_context(),
        "records": records,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {path}")
