"""Shared helpers for the benchmark scripts' script-mode (CI smoke) runs.

The benchmark scripts import this module, which works from either entry
point: running a script directly puts ``benchmarks/`` on ``sys.path``, and
pytest's rootdir insertion does the same when the files are collected.
"""

import json
import time


def best_of(fn, *args, repeat=3):
    """Best-of-``repeat`` wall-clock seconds for ``fn(*args)``."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _record_metadata(config):
    """Deployment metadata stamped into every record: backend, shards, workers.

    The active compute backend, the shard count and the worker execution
    model (threaded shards vs process shards on shared-memory weights) are
    the knobs that change what a number means across PRs, so each record
    carries them even when the producing script didn't think to include
    them.  Single-process benchmarks are shard count 1 with threaded
    (in-process) execution.
    """
    try:
        from repro.backend import active_backend

        backend = active_backend().name
    except Exception:  # pragma: no cover - repro not importable
        backend = None
    shards, workers = 1, "threaded"
    if isinstance(config, dict):
        backend = config.get("backend", backend)
        shards = config.get("shards", 1)
        workers = config.get("workers", workers)
    return {"backend": backend, "shards": shards, "workers": workers}


def write_records(path, benchmark, config, records):
    """Write one machine-readable BENCH_*.json payload and announce it.

    The schema is shared by every benchmark script so the perf trajectory
    can be tracked across PRs: ``{"benchmark", "config", "records"}`` with
    each record carrying at least ``name``, ``unit`` and ``value`` plus the
    stamped ``backend``/``shards`` deployment metadata (records that already
    set either key keep their own value).
    """
    metadata = _record_metadata(config)
    for record in records:
        for key, value in metadata.items():
            record.setdefault(key, value)
    payload = {"benchmark": benchmark, "config": config, "records": records}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {path}")
