"""Shared helpers for the benchmark scripts' script-mode (CI smoke) runs.

Both ``bench_kernels.py`` and ``bench_serving.py`` import this module, which
works from either entry point: running the script directly puts
``benchmarks/`` on ``sys.path``, and pytest's rootdir insertion does the
same when the files are collected.
"""

import json
import time


def best_of(fn, *args, repeat=3):
    """Best-of-``repeat`` wall-clock seconds for ``fn(*args)``."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def write_records(path, benchmark, config, records):
    """Write one machine-readable BENCH_*.json payload and announce it.

    The schema is shared by every benchmark script so the perf trajectory
    can be tracked across PRs: ``{"benchmark", "config", "records"}`` with
    each record carrying at least ``name``, ``unit`` and ``value``.
    """
    payload = {"benchmark": benchmark, "config": config, "records": records}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {path}")
