"""Benchmark E1 — regenerates Fig. 1 (accuracy at different N:M ratios).

Paper shape: accuracy drops as the N:M ratio tightens (3:4 -> 2:4 -> 1:4);
compact MobileNetV2 degrades the most, ResNet-50 the least.
"""

import pytest

from repro.experiments import Fig1Config, run_fig1

from conftest import BENCH_SCALE, print_rows


@pytest.mark.benchmark(group="fig1")
def test_fig1_nm_ratio_sweep(benchmark):
    config = Fig1Config(
        models=("resnet_tiny", "mobilenet_tiny"),
        nm_ratios=((3, 4), (2, 4), (1, 4)),
        num_user_classes=4,
        scale=BENCH_SCALE,
    )
    rows = benchmark.pedantic(run_fig1, args=(config,), iterations=1, rounds=1)
    print_rows("Fig. 1: accuracy vs N:M ratio", rows)

    for model in ("resnet_tiny", "mobilenet_tiny"):
        model_rows = {r["pattern"]: r for r in rows if r["model"] == model}
        assert model_rows["1:4"]["sparsity"] > model_rows["2:4"]["sparsity"] > model_rows["3:4"]["sparsity"]
        # Accuracy at the loosest pattern stays within reach of dense.
        assert model_rows["3:4"]["accuracy_drop"] <= model_rows["1:4"]["accuracy_drop"] + 0.25
