"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three ablations the paper motivates but does not isolate in a figure:

* **Saliency criterion** — class-aware Taylor score vs. pure magnitude vs.
  random, at matched sparsity (Sec. III-D's motivation for CASS).
* **Iterative vs. one-shot pruning** — Algorithm 1's gradual schedule vs.
  pruning to the final target in a single step (the layer-collapse argument).
* **Straight-through estimator** — STE fine-tuning (dense weights keep
  evolving) vs. masked-only updates.
"""

import numpy as np
import pytest

from repro.data import build_user_loaders, make_dataset, sample_user_profile
from repro.nn.models import resnet_tiny
from repro.nn.models.base import prunable_layers
from repro.nn.trainer import TrainConfig, Trainer
from repro.pruning import CRISPConfig, CRISPPruner
from repro.pruning.baselines import block_prune
from repro.pruning.saliency import compute_saliency
from repro.sparsity.nm import nm_mask


def _setup(seed=0, num_classes=4, epochs=2):
    dataset = make_dataset("synthetic-tiny", seed=seed)
    profile = sample_user_profile(dataset, num_classes, seed=seed)
    train_loader, val_loader = build_user_loaders(dataset, profile, batch_size=16, seed=seed)
    model = resnet_tiny(num_classes=num_classes, input_size=dataset.image_size, seed=seed)
    Trainer(model, TrainConfig(epochs=epochs, lr=0.05)).fit(train_loader)
    return model, train_loader, val_loader


@pytest.mark.benchmark(group="ablations")
def test_ablation_saliency_criteria(benchmark):
    """Class-aware saliency vs magnitude vs random for N:M mask selection."""

    def run():
        from repro.nn.trainer import evaluate

        results = {}
        for criterion in ("class_aware", "magnitude", "random"):
            model, train_loader, val_loader = _setup(seed=1)
            saliency = compute_saliency(
                criterion, model, batches=iter(train_loader), max_batches=2, seed=1
            )
            for name, layer in prunable_layers(model).items():
                layer.set_reshaped_mask(nm_mask(saliency[name], 1, 4, axis=0))
            Trainer(model, TrainConfig(epochs=1, lr=0.02)).fit(train_loader)
            results[criterion] = evaluate(model, iter(val_loader))
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\nsaliency ablation (1:4 accuracy): {results}")
    # Informed criteria should not lose to random selection by a wide margin.
    informed = max(results["class_aware"], results["magnitude"])
    assert informed >= results["random"] - 0.1


@pytest.mark.benchmark(group="ablations")
def test_ablation_iterative_vs_one_shot(benchmark):
    """Gradual sparsity ramp (Algorithm 1) vs one-shot pruning to the target."""

    def run():
        results = {}
        for schedule, iterations in (("linear", 3), ("one_shot", 1)):
            model, train_loader, val_loader = _setup(seed=2)
            config = CRISPConfig(
                n=2, m=4, block_size=8, target_sparsity=0.85,
                iterations=iterations, finetune_epochs=1, schedule=schedule,
                saliency_batches=2,
            )
            result = CRISPPruner(model, config).prune(train_loader, val_loader)
            results[schedule] = {
                "accuracy": result.final_accuracy,
                "sparsity": result.final_sparsity,
            }
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\niterative-vs-one-shot ablation: {results}")
    assert results["linear"]["sparsity"] == pytest.approx(0.85, abs=0.05)
    assert results["one_shot"]["sparsity"] == pytest.approx(0.85, abs=0.05)
    # At this micro scale the accuracy difference between the schedules sits
    # inside run-to-run noise, so the comparison is recorded (EXPERIMENTS.md)
    # rather than asserted tightly; both runs must remain valid classifiers.
    assert 0.0 <= results["linear"]["accuracy"] <= 1.0
    assert 0.0 <= results["one_shot"]["accuracy"] <= 1.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_ste_vs_masked_updates(benchmark):
    """Straight-through-estimator fine-tuning vs mask-respecting fine-tuning."""

    def run():
        results = {}
        for use_ste in (True, False):
            model, train_loader, val_loader = _setup(seed=3)
            config = CRISPConfig(
                n=2, m=4, block_size=8, target_sparsity=0.8,
                iterations=2, finetune_epochs=1, use_ste=use_ste, saliency_batches=2,
            )
            result = CRISPPruner(model, config).prune(train_loader, val_loader)
            results["ste" if use_ste else "masked"] = result.final_accuracy
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\nSTE ablation (accuracy at 80% sparsity): {results}")
    assert all(0.0 <= acc <= 1.0 for acc in results.values())


@pytest.mark.benchmark(group="ablations")
def test_ablation_uniform_vs_global_blocks(benchmark):
    """CRISP's uniform blocks-per-row constraint vs unconstrained global block
    selection, at matched sparsity (the load-balancing design choice)."""

    def run():
        from repro.nn.trainer import evaluate
        from repro.sparsity.masks import check_block_uniformity

        model, train_loader, val_loader = _setup(seed=4)
        crisp_model, block_model = model, None

        config = CRISPConfig(
            n=2, m=4, block_size=8, target_sparsity=0.8,
            iterations=2, finetune_epochs=1, saliency_batches=2,
        )
        crisp_result = CRISPPruner(crisp_model, config).prune(train_loader, val_loader)

        block_model, train_loader2, val_loader2 = _setup(seed=4)
        block_result = block_prune(
            block_model, target_sparsity=0.8, block_size=8,
            train_loader=train_loader2, val_loader=val_loader2, finetune_epochs=1,
        )

        uniform = all(
            check_block_uniformity(
                layer.weight.mask.reshape(layer.reshaped_weight().shape[1], -1).T, 8
            )
            for layer in prunable_layers(crisp_model).values()
        )
        return {
            "crisp_accuracy": crisp_result.final_accuracy,
            "block_accuracy": block_result.final_accuracy,
            "crisp_uniform_rows": uniform,
        }

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\nuniform-vs-global block ablation: {results}")
    # CRISP keeps the hardware-friendly structure without giving up accuracy.
    assert results["crisp_uniform_rows"] is True
    assert results["crisp_accuracy"] >= results["block_accuracy"] - 0.1
