"""Benchmark E5 — regenerates Fig. 7 (accuracy & FLOPs vs number of user classes).

Paper shape: CRISP tracks the dense fine-tuned upper bound while running at a
much lower normalized FLOPs ratio than the channel-pruning baseline; accuracy
drops slowly as the number of user-preferred classes grows.
"""

import pytest

from repro.experiments import Fig7Config, run_fig7

from conftest import BENCH_SCALE, print_rows


@pytest.mark.benchmark(group="fig7")
def test_fig7_class_count_sweep(benchmark):
    config = Fig7Config(
        class_counts=(2, 4, 6),
        datasets=("synthetic-tiny",),
        models=("resnet_tiny",),
        scale=BENCH_SCALE,
        max_sparsity=0.875,
        min_sparsity=0.5,
    )
    rows = benchmark.pedantic(run_fig7, args=(config,), iterations=1, rounds=1)
    print_rows("Fig. 7: accuracy / FLOPs vs number of user classes", rows)

    for count in config.class_counts:
        point = {r["method"]: r for r in rows if r["num_classes"] == count}
        # CRISP prunes much harder than the dense model.
        assert point["crisp"]["flops_ratio"] < 0.7
        assert point["crisp"]["sparsity"] > 0.4
        # All methods report valid accuracies.
        for method in ("dense", "crisp", "channel"):
            assert 0.0 <= point[method]["accuracy"] <= 1.0

    # Sparsity budget shrinks (FLOPs ratio grows) as the class count grows.
    crisp_rows = sorted(
        (r for r in rows if r["method"] == "crisp"), key=lambda r: r["num_classes"]
    )
    assert crisp_rows[0]["sparsity"] >= crisp_rows[-1]["sparsity"] - 1e-9
