"""Benchmark E8 — the paper's headline claims.

Aggregates the accuracy sweep (E3) and the hardware sweep (E6) into the
abstract-level numbers: high sparsity at retained accuracy, and large latency
and energy reductions for CRISP-STC over the dense baseline and prior sparse
accelerators.
"""

import pytest

from repro.experiments import Fig3Config, Fig8Config, HeadlineConfig, run_headline

from conftest import BENCH_SCALE


@pytest.mark.benchmark(group="headline")
def test_headline_claims(benchmark):
    config = HeadlineConfig(
        fig3=Fig3Config(
            sparsity_levels=(0.875,),
            block_sizes=(8,),
            num_user_classes=4,
            scale=BENCH_SCALE,
        ),
        fig8=Fig8Config(
            nm_ratios=((1, 4), (2, 4)),
            block_sizes=(64,),
            global_sparsities=(0.90,),
        ),
    )
    summary = benchmark.pedantic(run_headline, args=(config,), iterations=1, rounds=1)
    print("\n=== Headline summary ===")
    for key, value in summary.items():
        print(f"{key:>24}: {value:.3f}")

    # Accuracy side: CRISP reaches high sparsity and is at least as accurate
    # as pure block pruning at the same target.
    assert summary["crisp_sparsity"] > 0.8
    assert summary["crisp_accuracy"] >= summary["block_accuracy"] - 0.05

    # Hardware side: CRISP-STC speedup and energy efficiency dominate the
    # baselines; NVIDIA-STC stays at/below 2x (paper: up to 14x / 30x for
    # CRISP vs <=2x for NVIDIA-STC).
    assert summary["max_speedup"] > 6.0
    assert summary["max_energy_efficiency"] > 5.0
    assert summary["nvidia_max_speedup"] <= 2.0 + 1e-9
    assert summary["max_speedup"] > summary["dstc_max_speedup"]
