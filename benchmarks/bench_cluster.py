"""Cluster throughput: sharded serving runtime vs the single-process facade.

The scenario is the paper's millions-of-users setting scaled down: a fleet
of personalized tenant models far larger than any one worker's engine-cache
budget, receiving interleaved mixed-tenant traffic in arrival windows.  Both
deployments get the *same memory budget per worker* (``--capacity`` cache
slots):

* **single** — one :class:`~repro.serve.PersonalizationService`; with more
  hot tenants than cache slots, the LRU cache thrashes and every window
  pays engine rebuilds (module + compressed-format re-encode);
* **cluster** — a :class:`~repro.cluster.ClusterService` with ``--shards``
  workers; consistent hashing partitions the tenants so each shard's slice
  fits its cache and steady-state traffic is all cache hits.

That locality is what the sharded runtime is *for*, and it is where the
≥2x throughput on mixed-tenant replays comes from (an ``unbounded`` single
service that magically fits every tenant is also measured as the no-thrash
reference point).  Predictions are asserted identical across deployments.

The script mode additionally runs the **threaded-vs-process head-to-head**:
the same scenario and seed served by ``workers="process"`` shards (children
on zero-copy shared-memory weights), reporting per-mode throughput and p99
and — on hosts with >=4 cores — asserting the process shards beat the
GIL-bound threaded shards by >=1.5x.  On smaller hosts the target is
skipped with the reason recorded in the JSON payload.

Run under pytest-benchmark for the tracked numbers::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py --benchmark-only

or as a script (the CI smoke run)::

    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke --json BENCH_cluster.json
"""

import argparse
import os

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterService
from repro.serve import PersonalizationService, ServiceConfig

from bench_serving import build_fleet, request_stream

#: Fleet defaults: many tenants, bounded per-worker cache, windowed arrivals.
TENANTS, REQUESTS, WINDOW, CAPACITY, SHARDS = 16, 96, 8, 4, 4


def replay_windows(predict_batch, requests, window=WINDOW):
    """Replay ``requests`` in arrival windows of ``window`` requests.

    Windowed arrival is the realistic traffic shape: a burst lands, the
    deployment answers it, the next burst lands.  One call per window keeps
    the comparison fair — both deployments see identical bursts.
    """
    responses = []
    for start in range(0, len(requests), window):
        responses.extend(predict_batch(requests[start : start + window]))
    return responses


def make_single(registry, capacity):
    """A single-process facade over the shared fleet registry."""
    return PersonalizationService(
        ServiceConfig(cache_capacity=capacity), registry=registry
    )


def make_cluster(registry, shards, capacity, workers="threaded"):
    """A started sharded runtime over the same registry (same per-worker budget)."""
    return ClusterService(
        ClusterConfig(shards=shards, cache_capacity=capacity, workers=workers),
        registry=registry,
    )


# ---------------------------------------------------------------------------
# pytest-benchmark harness
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def cluster_setup():
    registry, model_ids, _ = build_fleet(tenants=TENANTS)
    requests = request_stream(model_ids, requests=REQUESTS)
    single = make_single(registry, CAPACITY)
    cluster = make_cluster(registry, SHARDS, CAPACITY)
    replay_windows(single.predict_batch, requests)  # warm (what fits, fits)
    replay_windows(cluster.predict_batch, requests)
    yield registry, single, cluster, requests
    cluster.shutdown()


@pytest.mark.benchmark(group="cluster")
def test_single_bounded_dispatch(benchmark, cluster_setup):
    _, single, _, requests = cluster_setup
    responses = benchmark(replay_windows, single.predict_batch, requests)
    assert len(responses) == len(requests)


@pytest.mark.benchmark(group="cluster")
def test_cluster_dispatch(benchmark, cluster_setup):
    _, _, cluster, requests = cluster_setup
    responses = benchmark(replay_windows, cluster.predict_batch, requests)
    assert len(responses) == len(requests)
    assert all(r.status == 200 for r in responses)


@pytest.mark.benchmark(group="cluster")
def test_process_cluster_dispatch(benchmark, cluster_setup):
    registry, _, _, requests = cluster_setup
    cluster = make_cluster(registry, SHARDS, CAPACITY, workers="process")
    try:
        replay_windows(cluster.predict_batch, requests)  # warm the shard caches
        responses = benchmark(replay_windows, cluster.predict_batch, requests)
    finally:
        cluster.shutdown()
    assert len(responses) == len(requests)
    assert all(r.status == 200 for r in responses)


# ---------------------------------------------------------------------------
# Script mode: the CI smoke run and the tracked JSON records
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    from benchlib import best_of, write_records

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tenants", type=int, default=TENANTS)
    parser.add_argument("--requests", type=int, default=REQUESTS)
    parser.add_argument("--window", type=int, default=WINDOW,
                        help="requests per arrival burst")
    parser.add_argument("--capacity", type=int, default=CAPACITY,
                        help="engine-cache slots per worker (single AND per shard)")
    parser.add_argument("--shards", type=int, default=SHARDS)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fleet, single timing repeat (fast CI sanity run)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write machine-readable BENCH_*.json records to PATH",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the cluster beats the bounded single "
        "service by the target factor (timing-sensitive; off by default "
        "so loaded CI machines don't flake)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        tenants, requests_n, window, capacity, shards = 4, 16, 4, 2, 2
        repeat, target = 1, 1.0
    else:
        tenants, requests_n, window, capacity, shards = (
            args.tenants, args.requests, args.window, args.capacity, args.shards,
        )
        repeat, target = 3, 2.0

    registry, model_ids, spec = build_fleet(tenants=tenants)
    requests = request_stream(model_ids, requests=requests_n)
    single = make_single(registry, capacity)
    unbounded = make_single(registry, tenants)  # no-thrash reference point
    cluster = make_cluster(registry, shards, capacity)
    process_cluster = make_cluster(registry, shards, capacity, workers="process")
    try:
        # Warm every deployment and pin prediction parity across all four:
        # the process shards must serve the exact bits the threaded shards
        # and both single-process references do.
        base = replay_windows(single.predict_batch, requests, window)
        full = replay_windows(unbounded.predict_batch, requests, window)
        sharded = replay_windows(cluster.predict_batch, requests, window)
        proc = replay_windows(process_cluster.predict_batch, requests, window)
        for a, b, c, d in zip(base, full, sharded, proc):
            np.testing.assert_array_equal(a.logits, b.logits)
            np.testing.assert_array_equal(a.logits, c.logits)
            np.testing.assert_array_equal(a.logits, d.logits)

        t_single = best_of(replay_windows, single.predict_batch, requests, window,
                           repeat=repeat)
        t_unbounded = best_of(replay_windows, unbounded.predict_batch, requests, window,
                              repeat=repeat)
        t_cluster = best_of(replay_windows, cluster.predict_batch, requests, window,
                            repeat=repeat)
        t_process = best_of(replay_windows, process_cluster.predict_batch, requests, window,
                            repeat=repeat)
        p99_cluster = cluster.stats()["totals"]["latency"]["p99_ms"]
        p99_process = process_cluster.stats()["totals"]["latency"]["p99_ms"]
    finally:
        cluster.shutdown()
        process_cluster.shutdown()
    speedup = t_single / t_cluster
    process_speedup = t_cluster / t_process

    # The threaded-vs-process head-to-head only means something with cores to
    # run the shards on: under ~4 the children time-slice one or two cores
    # and the pipe/serialization overhead is all that is measured.
    cores = os.cpu_count() or 1
    process_target = 1.5
    process_skip = None if cores >= 4 else (
        f"host has {cores} core(s) < 4: process-shard scaling not measurable"
    )

    print(
        f"replaying {requests_n} single-image requests over {tenants} tenants "
        f"in windows of {window} (resnet_tiny, {spec.weight_format} weights, "
        f"{capacity} cache slots per worker)"
    )
    print(f"{'deployment':>26} | {'latency':>10} | {'requests/s':>10} | {'p99':>8}")
    print(f"{'single (bounded)':>26} | {t_single * 1e3:8.1f}ms | {requests_n / t_single:10.0f} | {'-':>8}")
    print(f"{'single (unbounded)':>26} | {t_unbounded * 1e3:8.1f}ms | {requests_n / t_unbounded:10.0f} | {'-':>8}")
    print(f"{f'cluster ({shards} threaded)':>26} | {t_cluster * 1e3:8.1f}ms | {requests_n / t_cluster:10.0f} | {p99_cluster:6.2f}ms")
    print(f"{f'cluster ({shards} process)':>26} | {t_process * 1e3:8.1f}ms | {requests_n / t_process:10.0f} | {p99_process:6.2f}ms")
    print(f"cluster speedup over bounded single service: {speedup:.2f}x")
    print(f"process-shard speedup over threaded shards:  {process_speedup:.2f}x "
          f"(target {process_target:.1f}x on >=4 cores; {cores} core(s) here)")

    if args.json:
        process_record = {
            "name": "process_speedup_over_threaded", "unit": "x",
            "value": process_speedup, "shards": shards, "workers": "process",
            "target": process_target, "cores": cores,
            "enforced": process_skip is None,
        }
        if process_skip is not None:
            process_record["skip_reason"] = process_skip
        write_records(
            args.json,
            "cluster_throughput",
            {
                "tenants": tenants,
                "requests": requests_n,
                "window": window,
                "cache_capacity": capacity,
                "shards": shards,
                "weight_format": spec.weight_format,
                "backend": spec.backend,
                "smoke": args.smoke,
            },
            # Each record names its own deployment: the single-process
            # replays are shard count 1 regardless of the config's shards,
            # and the worker kind distinguishes the two cluster rows.
            [
                {"name": "single_bounded_dispatch", "unit": "s", "value": t_single,
                 "requests_per_s": requests_n / t_single, "shards": 1},
                {"name": "single_unbounded_dispatch", "unit": "s", "value": t_unbounded,
                 "requests_per_s": requests_n / t_unbounded, "shards": 1},
                {"name": "cluster_dispatch", "unit": "s", "value": t_cluster,
                 "requests_per_s": requests_n / t_cluster, "shards": shards,
                 "p99_ms": p99_cluster},
                {"name": "cluster_dispatch_process", "unit": "s", "value": t_process,
                 "requests_per_s": requests_n / t_process, "shards": shards,
                 "workers": "process", "p99_ms": p99_process},
                {"name": "cluster_speedup", "unit": "x", "value": speedup,
                 "shards": shards},
                process_record,
            ],
        )

    failed = False
    if speedup < target:
        message = (
            f"cluster below target over bounded single service "
            f"({speedup:.2f}x < {target:.1f}x)"
        )
        print(("FAIL: " if args.check else "below target (not enforced): ") + message)
        failed = failed or args.check
    else:
        print(f"ok: cluster >= {target:.1f}x bounded single-service throughput")

    if process_skip is not None:
        print(f"process head-to-head target skipped: {process_skip}")
    elif process_speedup < process_target:
        message = (
            f"process shards below target over threaded shards "
            f"({process_speedup:.2f}x < {process_target:.1f}x)"
        )
        print(("FAIL: " if args.check else "below target (not enforced): ") + message)
        failed = failed or args.check
    else:
        print(f"ok: process shards >= {process_target:.1f}x threaded-shard throughput")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
