"""Microbenchmarks for the core kernels and mask generators.

Not tied to a specific paper figure: these track the cost of the substrate
operations (im2col convolution, mask generation, format encoding, the
functional CRISP GEMM) so regressions in the building blocks are visible.
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.sparsity import (
    CRISPFormat,
    HybridSparsityConfig,
    crisp_matmul,
    hybrid_mask,
    nm_mask,
    uniform_block_mask,
)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


@pytest.mark.benchmark(group="kernels")
def test_conv2d_forward_kernel(benchmark, rng):
    x = rng.normal(size=(8, 16, 16, 16))
    weight = rng.normal(size=(32, 16, 3, 3))
    bias = rng.normal(size=32)
    out, _ = benchmark(F.conv2d_forward, x, weight, bias, 1, 1)
    assert out.shape == (8, 32, 16, 16)


@pytest.mark.benchmark(group="kernels")
def test_conv2d_backward_kernel(benchmark, rng):
    x = rng.normal(size=(8, 16, 16, 16))
    weight = rng.normal(size=(32, 16, 3, 3))
    out, cache = F.conv2d_forward(x, weight, None, 1, 1)
    grad_out = rng.normal(size=out.shape)
    grad_x, grad_w, _ = benchmark(F.conv2d_backward, grad_out, weight, cache)
    assert grad_x.shape == x.shape and grad_w.shape == weight.shape


@pytest.mark.benchmark(group="kernels")
def test_nm_mask_kernel(benchmark, rng):
    scores = rng.random((1152, 256))
    mask = benchmark(nm_mask, scores, 2, 4, 0)
    assert mask.mean() == pytest.approx(0.5)


@pytest.mark.benchmark(group="kernels")
def test_uniform_block_mask_kernel(benchmark, rng):
    scores = rng.random((1152, 256))
    mask = benchmark(uniform_block_mask, scores, 16, 8)
    assert 0.0 < mask.mean() < 1.0


@pytest.mark.benchmark(group="kernels")
def test_hybrid_mask_kernel(benchmark, rng):
    scores = rng.random((1152, 256))
    config = HybridSparsityConfig(2, 4, 16)
    mask, info = benchmark(hybrid_mask, scores, config, 0.9)
    assert info.achieved_sparsity == pytest.approx(0.9, abs=0.03)


@pytest.mark.benchmark(group="kernels")
def test_crisp_format_encode_kernel(benchmark, rng):
    weight = rng.normal(size=(256, 64))
    mask, _ = hybrid_mask(np.abs(weight), HybridSparsityConfig(2, 4, 16), target_sparsity=0.85)
    sparse = weight * mask
    fmt = benchmark(CRISPFormat.from_dense, sparse, 2, 4, 16)
    assert fmt.is_lossless


@pytest.mark.benchmark(group="kernels")
def test_crisp_matmul_kernel(benchmark, rng):
    weight = rng.normal(size=(128, 64))
    mask, _ = hybrid_mask(np.abs(weight), HybridSparsityConfig(2, 4, 16), target_sparsity=0.85)
    sparse = weight * mask
    fmt = CRISPFormat.from_dense(sparse, 2, 4, 16)
    activations = rng.normal(size=(128, 8))
    out = benchmark(crisp_matmul, fmt, activations)
    np.testing.assert_allclose(out, sparse.T @ activations, atol=1e-8)
