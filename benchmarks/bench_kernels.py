"""Microbenchmarks for the core kernels, mask generators and compute backends.

Not tied to a specific paper figure: these track the cost of the substrate
operations (im2col convolution, mask generation, format encoding, the sparse
GEMMs on both backends) so regressions in the building blocks are visible.

Run under pytest-benchmark for the tracked numbers::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py --benchmark-only

or as a script for a quick reference-vs-fast speedup report (the CI smoke
run)::

    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke --json BENCH_kernels.json
"""

import numpy as np
import pytest

from repro.backend import Engine, get_backend
from repro.nn import functional as F
from repro.nn.models import build_model
from repro.sparsity import (
    BlockedEllpackFormat,
    CRISPFormat,
    CSRFormat,
    HybridSparsityConfig,
    crisp_matmul,
    hybrid_mask,
    nm_mask,
    uniform_block_mask,
)

#: Representative GEMM sizes for the backend comparison: a late-network
#: 3x3 conv (128 -> 256 channels) after im2col lowering ((K, S) weight), with
#: the activation column count of the paper's personalized-edge setting —
#: batch-1 inference over a small late-stage feature map.
BENCH_ROWS, BENCH_COLS, BENCH_BATCH = 1152, 256, 8
BENCH_N, BENCH_M, BENCH_BLOCK = 2, 4, 16


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def _bench_operands(rng, rows=BENCH_ROWS, cols=BENCH_COLS, batch=BENCH_BATCH):
    weight = rng.normal(size=(rows, cols))
    mask, _ = hybrid_mask(
        np.abs(weight),
        HybridSparsityConfig(BENCH_N, BENCH_M, BENCH_BLOCK),
        target_sparsity=0.85,
    )
    sparse = weight * mask
    activations = rng.normal(size=(rows, batch))
    return sparse, activations


@pytest.mark.benchmark(group="kernels")
def test_conv2d_forward_kernel(benchmark, rng):
    x = rng.normal(size=(8, 16, 16, 16))
    weight = rng.normal(size=(32, 16, 3, 3))
    bias = rng.normal(size=32)
    out, _ = benchmark(F.conv2d_forward, x, weight, bias, 1, 1)
    assert out.shape == (8, 32, 16, 16)


@pytest.mark.benchmark(group="kernels")
def test_conv2d_backward_kernel(benchmark, rng):
    x = rng.normal(size=(8, 16, 16, 16))
    weight = rng.normal(size=(32, 16, 3, 3))
    out, cache = F.conv2d_forward(x, weight, None, 1, 1)
    grad_out = rng.normal(size=out.shape)
    grad_x, grad_w, _ = benchmark(F.conv2d_backward, grad_out, weight, cache)
    assert grad_x.shape == x.shape and grad_w.shape == weight.shape


@pytest.mark.benchmark(group="kernels")
def test_nm_mask_kernel(benchmark, rng):
    scores = rng.random((1152, 256))
    mask = benchmark(nm_mask, scores, 2, 4, 0)
    assert mask.mean() == pytest.approx(0.5)


@pytest.mark.benchmark(group="kernels")
def test_uniform_block_mask_kernel(benchmark, rng):
    scores = rng.random((1152, 256))
    mask = benchmark(uniform_block_mask, scores, 16, 8)
    assert 0.0 < mask.mean() < 1.0


@pytest.mark.benchmark(group="kernels")
def test_hybrid_mask_kernel(benchmark, rng):
    scores = rng.random((1152, 256))
    config = HybridSparsityConfig(2, 4, 16)
    mask, info = benchmark(hybrid_mask, scores, config, 0.9)
    assert info.achieved_sparsity == pytest.approx(0.9, abs=0.03)


@pytest.mark.benchmark(group="kernels")
def test_crisp_format_encode_kernel(benchmark, rng):
    weight = rng.normal(size=(256, 64))
    mask, _ = hybrid_mask(np.abs(weight), HybridSparsityConfig(2, 4, 16), target_sparsity=0.85)
    sparse = weight * mask
    fmt = benchmark(CRISPFormat.from_dense, sparse, 2, 4, 16)
    assert fmt.is_lossless


@pytest.mark.benchmark(group="kernels")
def test_crisp_matmul_kernel(benchmark, rng):
    weight = rng.normal(size=(128, 64))
    mask, _ = hybrid_mask(np.abs(weight), HybridSparsityConfig(2, 4, 16), target_sparsity=0.85)
    sparse = weight * mask
    fmt = CRISPFormat.from_dense(sparse, 2, 4, 16)
    activations = rng.normal(size=(128, 8))
    out = benchmark(crisp_matmul, fmt, activations)
    np.testing.assert_allclose(out, sparse.T @ activations, atol=1e-8)


# ---------------------------------------------------------------------------
# Backend comparison: reference loops vs vectorized fast kernels
# ---------------------------------------------------------------------------

@pytest.mark.benchmark(group="sparse-backends")
@pytest.mark.parametrize("backend", ["reference", "fast"])
def test_csr_matmul_backend(benchmark, rng, backend):
    sparse, acts = _bench_operands(rng)
    fmt = CSRFormat.from_dense(sparse)
    be = get_backend(backend)
    out = benchmark(be.csr_matmul, fmt, acts)
    np.testing.assert_allclose(out, sparse.T @ acts, atol=1e-8)


@pytest.mark.benchmark(group="sparse-backends")
@pytest.mark.parametrize("backend", ["reference", "fast"])
def test_blocked_ellpack_matmul_backend(benchmark, rng, backend):
    sparse, acts = _bench_operands(rng)
    fmt = BlockedEllpackFormat.from_dense(sparse, BENCH_BLOCK)
    be = get_backend(backend)
    out = benchmark(be.blocked_ellpack_matmul, fmt, acts)
    np.testing.assert_allclose(out, sparse.T @ acts, atol=1e-8)


@pytest.mark.benchmark(group="sparse-backends")
@pytest.mark.parametrize("backend", ["reference", "fast"])
def test_crisp_matmul_backend(benchmark, rng, backend):
    sparse, acts = _bench_operands(rng)
    fmt = CRISPFormat.from_dense(sparse, BENCH_N, BENCH_M, BENCH_BLOCK)
    be = get_backend(backend)
    out = benchmark(be.crisp_matmul, fmt, acts)
    np.testing.assert_allclose(out, sparse.T @ acts, atol=1e-8)


@pytest.mark.benchmark(group="engine")
def test_engine_predict_kernel(benchmark, rng):
    model = build_model("resnet_tiny", num_classes=10, input_size=16, seed=0)
    engine = Engine(model, backend="fast", weight_format="dense")
    batch = rng.normal(size=(8, 3, 16, 16))
    logits = benchmark(engine.predict, batch)
    assert logits.shape == (8, 10)
    engine.detach()


# ---------------------------------------------------------------------------
# Script mode: the CI smoke run (reference vs fast speedup report)
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    import argparse

    from benchlib import best_of, write_records

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if CSR / blocked-ELLPACK speedups fall below the "
        "5x target (timing-sensitive; off by default so smoke runs on "
        "loaded CI machines don't flake)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single timing repeat (fast CI sanity run)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write machine-readable BENCH_*.json records to PATH",
    )
    args = parser.parse_args(argv)
    repeat = 1 if args.smoke else 3

    rng = np.random.default_rng(0)
    sparse, acts = _bench_operands(rng)
    reference = get_backend("reference")
    fast = get_backend("fast")

    cases = [
        ("csr", CSRFormat.from_dense(sparse), "csr_matmul"),
        ("blocked-ellpack", BlockedEllpackFormat.from_dense(sparse, BENCH_BLOCK), "blocked_ellpack_matmul"),
        ("crisp", CRISPFormat.from_dense(sparse, BENCH_N, BENCH_M, BENCH_BLOCK), "crisp_matmul"),
    ]

    print(
        f"sparse GEMM {BENCH_ROWS}x{BENCH_COLS} weight, batch {BENCH_BATCH}, "
        f"{BENCH_N}:{BENCH_M} in {BENCH_BLOCK}x{BENCH_BLOCK} blocks, ~85% sparse"
    )
    print(f"{'format':>16} | {'reference':>11} | {'fast':>11} | speedup")
    failures = []
    records = []
    for name, fmt, method in cases:
        ref_fn = getattr(reference, method)
        fast_fn = getattr(fast, method)
        np.testing.assert_allclose(fast_fn(fmt, acts), ref_fn(fmt, acts), atol=1e-8)
        t_ref = best_of(ref_fn, fmt, acts, repeat=repeat)
        t_fast = best_of(fast_fn, fmt, acts, repeat=repeat)
        speedup = t_ref / t_fast
        print(f"{name:>16} | {t_ref * 1e3:9.2f}ms | {t_fast * 1e3:9.2f}ms | {speedup:6.1f}x")
        records.append(
            # value is the fast-backend timing, so the record says so
            # explicitly rather than inheriting the process default.
            {"name": f"{name}_matmul", "unit": "s", "reference": t_ref, "fast": t_fast,
             "value": t_fast, "speedup": speedup, "backend": "fast"}
        )
        if name in ("csr", "blocked-ellpack") and speedup < 5.0:
            failures.append(f"{name}: {speedup:.1f}x < 5x target")

    if args.json:
        write_records(
            args.json,
            "sparse_kernels",
            {
                "rows": BENCH_ROWS, "cols": BENCH_COLS, "batch": BENCH_BATCH,
                "n": BENCH_N, "m": BENCH_M, "block_size": BENCH_BLOCK,
                "target_sparsity": 0.85, "smoke": args.smoke,
            },
            records,
        )

    if failures:
        print(("FAIL: " if args.check else "below target (not enforced): ") + "; ".join(failures))
        return 1 if args.check else 0
    print("ok: fast backend meets the >=5x target on CSR and blocked-ELLPACK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
