"""Benchmark E4 — regenerates Fig. 4 (right): metadata overhead of sparse formats.

Paper shape: CSR needs roughly 5x and ELLPACK roughly 7x more metadata than
the CRISP hybrid format on CRISP-pruned weight matrices.
"""

import pytest

from repro.experiments import Fig4Config, aggregate_overheads, run_fig4

from conftest import print_rows


@pytest.mark.benchmark(group="fig4")
def test_fig4_metadata_overheads(benchmark):
    config = Fig4Config(target_sparsity=0.875, block_size=16)
    rows = benchmark.pedantic(run_fig4, args=(config,), iterations=1, rounds=3)
    print_rows("Fig. 4 (right): metadata bits per format", rows)

    overheads = aggregate_overheads(rows)
    print(f"\naverage metadata overhead vs CRISP: {overheads}")

    # Shape of the paper's claim: both general-purpose formats cost several
    # times more metadata than CRISP, with ELLPACK the worst.
    assert overheads["crisp"] == pytest.approx(1.0)
    assert overheads["csr"] > 2.5
    assert overheads["ellpack"] > overheads["csr"]
    # The CRISP data+metadata total is also smaller than the dense encoding.
    for layer in {r["layer"] for r in rows}:
        layer_rows = {r["format"]: r for r in rows if r["layer"] == layer}
        assert layer_rows["crisp"]["total_bits"] < layer_rows["dense"]["total_bits"]
